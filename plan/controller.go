package plan

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"neuralcache"
)

// Restage is one explicit rebalance operation a re-plan emits: stage
// model To's weights onto a replica group that was pinned elsewhere (or
// free-for-all). The applier skips the physical staging when the group
// already holds To's weights; Cost prices the §IV-E reload it pays
// otherwise.
type Restage struct {
	// Group is the replica-group ordinal to restage.
	Group int `json:"group"`
	// From is the model the group was pinned to; "" means it was an
	// overflow group.
	From string `json:"from,omitempty"`
	// To is the model whose weights the group must stage.
	To string `json:"to"`
	// Cost is To's reload estimate onto one group.
	Cost time.Duration `json:"cost_ns"`
}

// ControllerConfig tunes the online drift controller. The zero value is
// disabled; any positive Threshold enables it with the remaining fields
// defaulted.
type ControllerConfig struct {
	// Threshold is the total-variation distance (½ Σ|plan − observed|,
	// in [0, 1]) between the active plan's mix and the observed mix
	// beyond which the controller re-plans. 0 disables the controller.
	Threshold float64
	// HalfLife is the decay half-life of the served-mix EWMA: an
	// observation's influence halves every HalfLife of (virtual or
	// wall) clock. Default 500ms.
	HalfLife time.Duration
	// MinInterval is the minimum time between re-plans, damping
	// oscillation. Default 2 × HalfLife.
	MinInterval time.Duration
	// MinObservations is the decayed request mass the EWMA must hold
	// before the controller trusts it enough to re-plan. Default 32.
	MinObservations float64
}

// Enabled reports whether the configuration turns the controller on.
func (c ControllerConfig) Enabled() bool { return c.Threshold > 0 }

func (c ControllerConfig) withDefaults() (ControllerConfig, error) {
	if c.Threshold < 0 || c.Threshold > 1 || math.IsNaN(c.Threshold) {
		return c, fmt.Errorf("plan: replan threshold %v outside [0, 1]", c.Threshold)
	}
	if c.HalfLife == 0 {
		c.HalfLife = 500 * time.Millisecond
	}
	if c.HalfLife < 0 {
		return c, fmt.Errorf("plan: EWMA half-life %v", c.HalfLife)
	}
	if c.MinInterval == 0 {
		c.MinInterval = 2 * c.HalfLife
	}
	if c.MinInterval < 0 {
		return c, fmt.Errorf("plan: replan interval %v", c.MinInterval)
	}
	if c.MinObservations == 0 {
		c.MinObservations = 32
	}
	if c.MinObservations < 0 || math.IsNaN(c.MinObservations) {
		return c, fmt.Errorf("plan: min observations %v", c.MinObservations)
	}
	return c, nil
}

// Controller is the online drift controller: it tracks the served mix
// with a time-decayed EWMA and, when the mix drifts beyond the
// configured threshold from the active plan's, recomputes the warm-set
// split at the same group size and emits the delta as Restage
// operations. All methods are safe for concurrent use; the clock handed
// to Observe/MaybeReplan must be monotone (a virtual clock makes the
// whole control loop deterministic).
type Controller struct {
	mu      sync.Mutex
	pr      *pricer
	models  []*neuralcache.Model
	index   map[string]int
	cfg     ControllerConfig
	opts    Options
	current *Plan

	counts []float64 // decayed per-model served-request mass
	// hitCounts is the decayed per-model front-cache-hit mass, aged on
	// the same clock. counts is dispatch-fed — already the miss-only
	// mix the warm sets should serve — so hits are tracked separately:
	// HitRates (hits over hits+misses) is what feeds
	// Options.CacheHitRate when re-running Compute/CoSelect, never a
	// second discount on counts.
	hitCounts  []float64
	lastObs    time.Duration
	lastReplan time.Duration
	replans    int
}

// NewController builds a controller around an active plan. models must
// be the planner's model list in the same order the plan was computed
// with (a serve backend's registration order).
func NewController(sys *neuralcache.System, models []*neuralcache.Model, current *Plan, cfg ControllerConfig) (*Controller, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if !c.Enabled() {
		return nil, fmt.Errorf("plan: controller threshold 0 (disabled)")
	}
	if current == nil {
		return nil, fmt.Errorf("plan: controller needs an active plan")
	}
	if len(models) != len(current.Models) {
		return nil, fmt.Errorf("plan: controller got %d models for a %d-model plan", len(models), len(current.Models))
	}
	ctrl := &Controller{
		pr:        newPricer(sys),
		models:    models,
		index:     make(map[string]int, len(models)),
		cfg:       c,
		current:   current,
		counts:    make([]float64, len(models)),
		hitCounts: make([]float64, len(models)),
	}
	for i, m := range models {
		if m == nil || m.Name() != current.Models[i].Model {
			return nil, fmt.Errorf("plan: controller model %d does not match the plan's %q", i, current.Models[i].Model)
		}
		ctrl.index[m.Name()] = i
	}
	ctrl.opts = Options{
		GroupSize:  current.GroupSize,
		MaxBatch:   current.MaxBatch,
		RatePerSec: current.RatePerSec,
		Overflow:   len(current.Overflow),
	}
	return ctrl, nil
}

// Plan returns the currently active plan.
func (c *Controller) Plan() *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current
}

// Replans returns how many re-plans the controller has applied.
func (c *Controller) Replans() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replans
}

// Observe feeds one dispatch of n requests of a model into the
// served-mix EWMA at clock time now. Unknown model names are ignored.
func (c *Controller) Observe(model string, n int, now time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.index[model]
	if !ok || n <= 0 {
		return
	}
	c.decay(now)
	c.counts[i] += float64(n)
}

// ObserveCacheHit feeds one front-cache hit of a model into the
// hit-rate EWMA at clock time now. Hits are absorbed before dispatch,
// so they deliberately do not touch the served-mix counts — those stay
// the miss-only mix the warm sets actually serve. Unknown model names
// are ignored.
func (c *Controller) ObserveCacheHit(model string, now time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.index[model]
	if !ok {
		return
	}
	c.decay(now)
	c.hitCounts[i]++
}

// HitRates returns each model's observed front-cache hit rate —
// decayed hit mass over hit-plus-dispatch mass, in the plan's model
// order — or nil when no hits have been observed. This is the feed for
// Options.CacheHitRate when recomputing a plan: the dispatch-fed
// served-mix counts are already miss-only, so applying the discount to
// them again would double-count the cache. Read-only like Drift
// (uniform decay cannot change a ratio).
func (c *Controller) HitRates() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	any := false
	for _, h := range c.hitCounts {
		if h > 0 {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	out := make(map[string]float64, len(c.models))
	for i, m := range c.models {
		if total := c.hitCounts[i] + c.counts[i]; total > 0 {
			out[m.Name()] = c.hitCounts[i] / total
		}
	}
	return out
}

// decay ages the EWMAs to clock time now; callers hold mu.
func (c *Controller) decay(now time.Duration) {
	if now <= c.lastObs {
		return
	}
	f := math.Exp2(-float64(now-c.lastObs) / float64(c.cfg.HalfLife))
	for i := range c.counts {
		c.counts[i] *= f
		c.hitCounts[i] *= f
	}
	c.lastObs = now
}

// Drift returns the total-variation distance between the active plan's
// mix and the observed mix (0 while the EWMA is empty). Read-only: it
// does not age the EWMA, which is safe because uniform decay scales
// every model's mass equally and so cannot change the normalized mix —
// samplers and debug endpoints may call it at any cadence without
// perturbing the control loop.
func (c *Controller) Drift() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drift()
}

// Observed returns the EWMA's normalized served mix as shares in the
// plan's model order, or nil while the EWMA holds no mass. Read-only
// like Drift, for the same decay-invariance reason.
func (c *Controller) Observed() []Share {
	c.mu.Lock()
	defer c.mu.Unlock()
	mass := 0.0
	for _, n := range c.counts {
		mass += n
	}
	if mass <= 0 {
		return nil
	}
	out := make([]Share, len(c.models))
	for i, m := range c.models {
		out[i] = Share{Model: m.Name(), Weight: c.counts[i] / mass}
	}
	return out
}

func (c *Controller) drift() float64 {
	mass := 0.0
	for _, n := range c.counts {
		mass += n
	}
	if mass <= 0 {
		return 0
	}
	tv := 0.0
	for i, mp := range c.current.Models {
		tv += math.Abs(mp.Weight - c.counts[i]/mass)
	}
	return tv / 2
}

// MaybeReplan re-plans when the observed mix has drifted beyond the
// threshold: it returns the new plan, the restage operations that turn
// the old assignment into the new one, and true. It returns false while
// drift is below threshold, the EWMA holds too little mass, the
// MinInterval damper is active, or the observed mix cannot be planned
// at the current group size (more active models than groups).
func (c *Controller) MaybeReplan(now time.Duration) (*Plan, []Restage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.decay(now)
	mass := 0.0
	for _, n := range c.counts {
		mass += n
	}
	if mass < c.cfg.MinObservations || now-c.lastReplan < c.cfg.MinInterval {
		return nil, nil, false
	}
	if c.drift() <= c.cfg.Threshold {
		return nil, nil, false
	}
	weights := make([]float64, len(c.counts))
	for i, n := range c.counts {
		weights[i] = n / mass
	}
	next, ops, err := rebalance(c.pr, c.models, c.current, weights, c.opts)
	if err != nil {
		return nil, nil, false
	}
	c.current = next
	c.lastReplan = now
	c.replans++
	return next, ops, true
}

// Rebalance recomputes the warm-set split for a new mix at the old
// plan's group size, moving as few groups as possible: each model keeps
// its currently pinned groups up to its new warm-set size, and only the
// difference is restaged. It returns the new plan and the restage
// operations that realize it.
func Rebalance(sys *neuralcache.System, models []*neuralcache.Model, old *Plan, mix []Share) (*Plan, []Restage, error) {
	if old == nil {
		return nil, nil, fmt.Errorf("plan: rebalance without a plan")
	}
	weights, err := Normalize(models, mix)
	if err != nil {
		return nil, nil, err
	}
	opts := Options{
		GroupSize:  old.GroupSize,
		MaxBatch:   old.MaxBatch,
		RatePerSec: old.RatePerSec,
		Overflow:   len(old.Overflow),
	}
	return rebalance(newPricer(sys), models, old, weights, opts)
}

func rebalance(pr *pricer, models []*neuralcache.Model, old *Plan, weights []float64, opts Options) (*Plan, []Restage, error) {
	if len(models) != len(old.Models) {
		return nil, nil, fmt.Errorf("plan: rebalance got %d models for a %d-model plan", len(models), len(old.Models))
	}
	// With no overflow pool, every registered model must keep a warm
	// set even when its observed weight has decayed to zero — otherwise
	// a re-plan would strand its next request with no eligible group.
	counts, err := apportion(weights, old.Groups-len(old.Overflow), len(old.Overflow) == 0)
	if err != nil {
		return nil, nil, fmt.Errorf("%w at group size %d", err, old.GroupSize)
	}
	// Keep-then-fill: each model keeps its lowest-ordinal pinned groups
	// up to the new count; shrunk warm sets and the old overflow feed a
	// free pool that growing warm sets draw from in ascending order.
	assign := make([][]int, len(models))
	var pool []int
	for i, mp := range old.Models {
		keep := min(len(mp.Groups), counts[i])
		assign[i] = append([]int(nil), mp.Groups[:keep]...)
		pool = append(pool, mp.Groups[keep:]...)
	}
	pool = append(pool, old.Overflow...)
	sort.Ints(pool)
	for i := range models {
		need := counts[i] - len(assign[i])
		if need > 0 {
			assign[i] = append(assign[i], pool[:need]...)
			pool = pool[need:]
			sort.Ints(assign[i])
		}
	}
	overflow := append([]int(nil), pool...)
	next, err := build(pr, models, weights, assign, overflow, old.Groups, opts)
	if err != nil {
		return nil, nil, err
	}
	oldPinned := old.Pinned()
	var ops []Restage
	for i, m := range models {
		for _, g := range assign[i] {
			if oldPinned[g] == m.Name() {
				continue
			}
			cost, err := pr.reload(m, old.GroupSize)
			if err != nil {
				return nil, nil, err
			}
			ops = append(ops, Restage{Group: g, From: oldPinned[g], To: m.Name(), Cost: cost})
		}
	}
	sort.Slice(ops, func(a, b int) bool { return ops[a].Group < ops[b].Group })
	return next, ops, nil
}
