package plan

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"neuralcache"
)

func newSystem(t testing.TB) *neuralcache.System {
	t.Helper()
	sys, err := neuralcache.New(neuralcache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func twoModels() []*neuralcache.Model {
	return []*neuralcache.Model{neuralcache.InceptionV3(), neuralcache.ResNet18()}
}

func shares(w1, w2 float64) []Share {
	return []Share{{Model: "inception_v3", Weight: w1}, {Model: "resnet_18", Weight: w2}}
}

// TestNormalize pins the mix rules: relative weights normalize over
// their sum, zero weights are allowed, negative / NaN / infinite
// weights and zero-sum mixes are rejected, and an empty mix routes
// everything to the first model.
func TestNormalize(t *testing.T) {
	models := twoModels()
	w, err := Normalize(models, shares(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-0.7) > 1e-12 || math.Abs(w[1]-0.3) > 1e-12 {
		t.Fatalf("weights {7,3} normalized to %v, want {0.7, 0.3}", w)
	}
	w2, err := Normalize(models, shares(0.7, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w, w2) {
		t.Fatalf("normalization is not scale-invariant: %v vs %v", w, w2)
	}
	// Zero weight: allowed, model planned with no warm set.
	w, err = Normalize(models, shares(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 1 || w[1] != 0 {
		t.Fatalf("weights {1,0}: %v", w)
	}
	// "" resolves to the first model; empty mix puts all weight there.
	w, err = Normalize(models, []Share{{Model: "", Weight: 2}})
	if err != nil || w[0] != 1 {
		t.Fatalf("default-model share: %v, %v", w, err)
	}
	if w, err = Normalize(models, nil); err != nil || w[0] != 1 {
		t.Fatalf("empty mix: %v, %v", w, err)
	}
	for _, bad := range [][]Share{
		shares(-1, 2),
		shares(math.NaN(), 1),
		shares(math.Inf(1), 1),
		shares(0, 0),
		{{Model: "nope", Weight: 1}},
		{{Model: "inception_v3", Weight: 1}, {Model: "inception_v3", Weight: 1}},
	} {
		if _, err := Normalize(models, bad); err == nil {
			t.Fatalf("Normalize accepted %+v", bad)
		}
	}
	if _, err := Normalize(nil, nil); err == nil {
		t.Fatal("Normalize accepted an empty model list")
	}
}

// TestApportion pins the warm-set split: proportional by largest
// remainder, at least one group per active model, exact total, and
// refusal when the groups cannot cover the active models.
func TestApportion(t *testing.T) {
	cases := []struct {
		weights []float64
		total   int
		want    []int
	}{
		{[]float64{0.5, 0.5}, 4, []int{2, 2}},
		{[]float64{0.8, 0.2}, 4, []int{3, 1}},
		{[]float64{0.75, 0.25}, 4, []int{3, 1}}, // remainder tie breaks on model order
		{[]float64{0.5, 0.5}, 2, []int{1, 1}},
		{[]float64{0.98, 0.01, 0.01}, 3, []int{1, 1, 1}}, // floor one each
		{[]float64{0.9, 0.1}, 28, []int{24, 4}},
		{[]float64{1, 0}, 4, []int{4, 0}}, // zero-weight models get nothing
	}
	for _, tc := range cases {
		got, err := apportion(tc.weights, tc.total, false)
		if err != nil {
			t.Fatalf("apportion(%v, %d): %v", tc.weights, tc.total, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("apportion(%v, %d) = %v, want %v", tc.weights, tc.total, got, tc.want)
		}
	}
	if _, err := apportion([]float64{0.4, 0.3, 0.3}, 2, false); err == nil {
		t.Fatal("apportion packed 3 active models into 2 groups")
	}
	if _, err := apportion([]float64{0, 0}, 4, false); err == nil {
		t.Fatal("apportion accepted an all-zero mix")
	}
}

// TestCompute checks a full plan at k=7: contiguous warm sets sized
// [3,1] for an 0.8/0.2 mix over 4 groups, predictions wired to the
// facade estimates, and the ReplicaGroups(k) ≥ Σ warm sets constraint
// holding by construction.
func TestCompute(t *testing.T) {
	sys := newSystem(t)
	models := twoModels()
	p, err := Compute(sys, models, shares(0.8, 0.2), Options{GroupSize: 7, MaxBatch: 16, RatePerSec: 400})
	if err != nil {
		t.Fatal(err)
	}
	if p.GroupSize != 7 || p.Groups != 4 {
		t.Fatalf("k=%d groups=%d, want 7 and 4", p.GroupSize, p.Groups)
	}
	if got := []int(p.Models[0].Groups); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("inception warm set %v, want [0 1 2]", got)
	}
	if got := []int(p.Models[1].Groups); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("resnet warm set %v, want [3]", got)
	}
	if p.PinnedGroups() > p.Groups {
		t.Fatalf("pinned %d groups of %d", p.PinnedGroups(), p.Groups)
	}
	if len(p.Overflow) != 0 {
		t.Fatalf("unexpected overflow %v", p.Overflow)
	}
	// Predictions match the facade estimates, rounded like the serve
	// backends round them.
	est, err := sys.EstimateReplicaGroup(models[0], 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := time.Duration(est.LatencySeconds * float64(time.Second)); p.Models[0].BatchService != want {
		t.Fatalf("batch service %v, want %v", p.Models[0].BatchService, want)
	}
	rel, err := sys.EstimateReloadGroup(models[0], 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := time.Duration(rel.Seconds * float64(time.Second)); p.Models[0].Reload != want {
		t.Fatalf("reload %v, want %v", p.Models[0].Reload, want)
	}
	if p.Models[0].CapacityPerSec <= 0 || p.Models[0].PredictedP99 <= p.Models[0].BatchService {
		t.Fatalf("degenerate predictions: %+v", p.Models[0])
	}
	if p.PredictedP99 <= 0 || p.WorstColdStart <= p.Models[0].BatchService {
		t.Fatalf("plan predictions: p99 %v, worst cold %v", p.PredictedP99, p.WorstColdStart)
	}
	wantRestage := 3*p.Models[0].Reload + 1*p.Models[1].Reload
	if p.RestageCost != wantRestage {
		t.Fatalf("restage cost %v, want %v", p.RestageCost, wantRestage)
	}
	if p.PredictedColdDispatches != 4 {
		t.Fatalf("predicted cold dispatches %d, want 4 (one per pinned group)", p.PredictedColdDispatches)
	}
	pin := p.Pinned()
	want := []string{"inception_v3", "inception_v3", "inception_v3", "resnet_18"}
	if !reflect.DeepEqual(pin, want) {
		t.Fatalf("pinned map %v, want %v", pin, want)
	}
	if s := p.String(); !strings.Contains(s, "inception_v3") || !strings.Contains(s, "0-2") {
		t.Fatalf("plan rendering missing assignment:\n%s", s)
	}
	// Determinism: same inputs, identical plan.
	again, err := Compute(sys, models, shares(0.8, 0.2), Options{GroupSize: 7, MaxBatch: 16, RatePerSec: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, again) {
		t.Fatal("Compute is not deterministic")
	}
}

// TestComputeOverflow reserves free-for-all groups: they come off the
// top of the warm-set budget and are listed in Overflow.
func TestComputeOverflow(t *testing.T) {
	sys := newSystem(t)
	p, err := Compute(sys, twoModels(), shares(1, 1), Options{GroupSize: 7, MaxBatch: 16, Overflow: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.PinnedGroups() != 3 || !reflect.DeepEqual(p.Overflow, []int{3}) {
		t.Fatalf("overflow plan: pinned %d, overflow %v", p.PinnedGroups(), p.Overflow)
	}
	if _, err := Compute(sys, twoModels(), shares(1, 1), Options{GroupSize: 7, Overflow: 4}); err == nil {
		t.Fatal("Compute accepted overflow eating every group")
	}
}

// TestComputeRefusals pins the error paths: non-divisor k, more active
// models than groups (the ping-pong guard), and invalid options.
func TestComputeRefusals(t *testing.T) {
	sys := newSystem(t)
	models := twoModels()
	if _, err := Compute(sys, models, shares(1, 1), Options{GroupSize: 3}); err == nil {
		t.Fatal("Compute accepted a non-divisor group size")
	}
	// Three active models cannot pin onto k=14's two groups.
	three := append(twoModels(), neuralcache.SmallCNN())
	mix3 := []Share{{Model: "inception_v3", Weight: 1}, {Model: "resnet_18", Weight: 1}, {Model: "small_cnn", Weight: 1}}
	if _, err := Compute(sys, three, mix3, Options{GroupSize: 14}); err == nil {
		t.Fatal("Compute pinned 3 active models onto 2 groups")
	}
	if _, err := Compute(sys, models, shares(1, 1), Options{GroupSize: 7, MaxBatch: -1}); err == nil {
		t.Fatal("Compute accepted a negative batch")
	}
	if _, err := Compute(sys, models, shares(1, 1), Options{GroupSize: 7, RatePerSec: math.NaN()}); err == nil {
		t.Fatal("Compute accepted a NaN rate")
	}
}

// TestCoSelect pins the co-selection behavior across load regimes on
// the default 14-slice, 2-socket system: at low rate the biggest
// groups win (latency-only), at moderate two-model rate k=7 beats the
// k=14 ping-pong regime, and near saturation the search falls back to
// small groups for capacity. The candidate set defaults to the slice
// count's divisors.
func TestCoSelect(t *testing.T) {
	sys := newSystem(t)
	if got := sys.GroupSizes(); !reflect.DeepEqual(got, []int{1, 2, 7, 14}) {
		t.Fatalf("GroupSizes() = %v", got)
	}
	models := twoModels()
	for _, tc := range []struct {
		rate float64
		want int
	}{
		{200, 14}, // light load: biggest groups, lowest latency
		{400, 7},  // moderate: k=14's two groups would saturate their queues
		{800, 1},  // heavy: only many small groups hold the rate
	} {
		p, err := CoSelect(sys, models, shares(1, 1), Options{MaxBatch: 16, RatePerSec: tc.rate})
		if err != nil {
			t.Fatalf("rate %.0f: %v", tc.rate, err)
		}
		if p.GroupSize != tc.want {
			t.Fatalf("rate %.0f: co-selected k=%d, want %d", tc.rate, p.GroupSize, tc.want)
		}
		if p.Saturated {
			t.Fatalf("rate %.0f: co-selected a saturated plan", tc.rate)
		}
	}
	// Latency-only scoring (no rate): biggest groups always win.
	p, err := CoSelect(sys, models, shares(1, 1), Options{MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if p.GroupSize != 14 {
		t.Fatalf("latency-only co-selection picked k=%d, want 14", p.GroupSize)
	}
	// An explicit candidate list narrows the search.
	p, err = CoSelect(sys, models, shares(1, 1), Options{MaxBatch: 16, RatePerSec: 400, GroupSizes: []int{7, 14}})
	if err != nil {
		t.Fatal(err)
	}
	if p.GroupSize != 7 {
		t.Fatalf("co-selection over {7,14} picked k=%d, want 7", p.GroupSize)
	}
	// No feasible candidate: three active models, only k=14 offered.
	three := append(twoModels(), neuralcache.SmallCNN())
	mix3 := []Share{{Model: "inception_v3", Weight: 1}, {Model: "resnet_18", Weight: 1}, {Model: "small_cnn", Weight: 1}}
	if _, err := CoSelect(sys, three, mix3, Options{GroupSizes: []int{14}}); err == nil {
		t.Fatal("CoSelect found a plan with no feasible candidate")
	}
}
