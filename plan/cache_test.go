package plan

import (
	"math"
	"reflect"
	"testing"
	"time"
)

// TestOptionsCacheHitRateValidation: hit rates must be finite and in
// [0, 1) — a rate of 1 would zero a model's miss traffic and the
// surviving offered rate with it.
func TestOptionsCacheHitRateValidation(t *testing.T) {
	sys := newSystem(t)
	models := twoModels()
	for _, h := range []float64{math.NaN(), -0.1, 1.0, 1.5} {
		o := Options{GroupSize: 7, MaxBatch: 16, CacheHitRate: map[string]float64{"inception_v3": h}}
		if _, err := Compute(sys, models, shares(1, 1), o); err == nil {
			t.Errorf("Compute accepted cache hit rate %v", h)
		}
	}
	o := Options{GroupSize: 7, MaxBatch: 16, CacheHitRate: map[string]float64{"inception_v3": 0.5}}
	if _, err := Compute(sys, models, shares(1, 1), o); err != nil {
		t.Fatalf("Compute rejected a valid hit rate: %v", err)
	}
}

// TestComputeCacheDiscount pins the discount semantics: a plan computed
// under observed hit rates must be identical to one computed from the
// equivalent miss-only mix at the surviving offered rate. With a
// 0.5/0.5 mix and inception hitting 50%, the miss mix is 0.25/0.5
// (normalized 1/3, 2/3) and 75% of the offered rate survives.
func TestComputeCacheDiscount(t *testing.T) {
	sys := newSystem(t)
	models := twoModels()
	discounted, err := Compute(sys, models, shares(1, 1), Options{
		GroupSize: 7, MaxBatch: 16, RatePerSec: 400,
		CacheHitRate: map[string]float64{"inception_v3": 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	manual, err := Compute(sys, models, shares(1, 2), Options{
		GroupSize: 7, MaxBatch: 16, RatePerSec: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(discounted, manual) {
		t.Fatalf("discounted plan differs from the equivalent miss-only plan:\n%+v\nvs\n%+v", discounted, manual)
	}
	if discounted.RatePerSec != 300 {
		t.Fatalf("surviving rate %v, want 300 (75%% of 400)", discounted.RatePerSec)
	}
	// A model absent from the map is undiscounted: an empty map is the
	// undiscounted plan.
	plain, err := Compute(sys, models, shares(1, 1), Options{GroupSize: 7, MaxBatch: 16, RatePerSec: 400})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Compute(sys, models, shares(1, 1), Options{
		GroupSize: 7, MaxBatch: 16, RatePerSec: 400,
		CacheHitRate: map[string]float64{"inception_v3": 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, zero) {
		t.Fatal("a zero hit rate changed the plan")
	}
}

// TestControllerHitRates: hits feed a separate EWMA from the
// dispatch-fed served mix — HitRates is hits over hits-plus-dispatches
// per model, nil before any hit, and decays on the same clock.
func TestControllerHitRates(t *testing.T) {
	ctrl, _ := driftPlan(t)
	if hr := ctrl.HitRates(); hr != nil {
		t.Fatalf("hit rates %v before any hit, want nil", hr)
	}
	now := 100 * time.Millisecond
	ctrl.Observe("inception_v3", 6, now)
	for i := 0; i < 6; i++ {
		ctrl.ObserveCacheHit("inception_v3", now)
	}
	ctrl.Observe("resnet_18", 4, now)
	ctrl.ObserveCacheHit("not_registered", now) // ignored
	hr := ctrl.HitRates()
	if hr == nil {
		t.Fatal("no hit rates after observed hits")
	}
	if got := hr["inception_v3"]; math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("inception hit rate %v, want 0.5 (6 hits / 6 dispatches)", got)
	}
	if got := hr["resnet_18"]; got != 0 {
		t.Fatalf("resnet hit rate %v with no hits, want 0", got)
	}
	// The rates are valid Options.CacheHitRate input as-is.
	sys := newSystem(t)
	if _, err := Compute(sys, twoModels(), shares(6, 4), Options{
		GroupSize: 7, MaxBatch: 16, RatePerSec: 400, CacheHitRate: hr,
	}); err != nil {
		t.Fatalf("Compute rejected controller-observed hit rates: %v", err)
	}
	// Uniform decay cannot change a ratio: much later, with no new
	// traffic, the rates hold.
	ctrl.Observe("inception_v3", 0, 10*time.Second)
	if got := ctrl.HitRates()["inception_v3"]; math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("decay changed a pure ratio: %v", got)
	}
}
