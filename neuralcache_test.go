package neuralcache

import (
	"math"
	"math/rand"
	"testing"
)

func TestDefaultSystemFacts(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Lanes(); got != 1146880 {
		t.Errorf("Lanes = %d, want 1,146,880", got)
	}
	if got := s.Arrays(); got != 4480 {
		t.Errorf("Arrays = %d, want 4480", got)
	}
	if got := s.CapacityBytes(); got != 35<<20 {
		t.Errorf("Capacity = %d, want 35 MB", got)
	}
	// §VII claims 28 TOP/s at 22 nm; the 236-cycle MAC model gives ≈24.
	if tops := s.PeakTOPS(); tops < 20 || tops > 32 {
		t.Errorf("PeakTOPS = %.1f, want ≈28 (paper §VII)", tops)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{{}, {Slices: 14}, {Slices: -1, Sockets: 2}} {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestEstimateInceptionHeadline(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.Estimate(InceptionV3(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ms := est.LatencySeconds * 1e3
	if ms < 4.25 || ms > 5.2 {
		t.Errorf("latency %.2f ms, paper reports 4.72", ms)
	}
	cpu, gpu := CPUBaseline(), GPUBaseline()
	if r := cpu.LatencySeconds() / est.LatencySeconds; r < 15 || r > 21 {
		t.Errorf("CPU speedup %.1f×, paper reports 18.3×", r)
	}
	if r := gpu.LatencySeconds() / est.LatencySeconds; r < 6.5 || r > 9 {
		t.Errorf("GPU speedup %.1f×, paper reports 7.7×", r)
	}
	if est.Phase("filter-load") <= est.Phase("mac") {
		t.Error("filter loading should dominate MACs (Figure 14)")
	}
	if len(est.Layers) != 20 {
		t.Errorf("%d layer timings, want 20", len(est.Layers))
	}
	// Energy ratios (Table III: 37.1× CPU, 16.6× GPU).
	if r := cpu.EnergyJ() / est.EnergyJ; r < 25 || r > 50 {
		t.Errorf("CPU energy ratio %.1f×, paper reports 37.1×", r)
	}
	if r := gpu.EnergyJ() / est.EnergyJ; r < 11 || r > 23 {
		t.Errorf("GPU energy ratio %.1f×, paper reports 16.6×", r)
	}
}

func TestLayerTableMatchesPaperRow(t *testing.T) {
	rows := InceptionV3().LayerTable()
	if len(rows) != 20 {
		t.Fatalf("%d rows, want 20", len(rows))
	}
	r := rows[2] // Conv2D_2b_3x3
	if r.Name != "Conv2D_2b_3x3" || r.Convolutions != 1382976 || r.FilterBytes != 18432 {
		t.Errorf("row 2 = %+v", r)
	}
}

func TestRunSmallCNNEndToEnd(t *testing.T) {
	s, err := New(Config{Slices: 1, Sockets: 1, BankLatch: true, FilterPacking: true})
	if err != nil {
		t.Fatal(err)
	}
	m := SmallCNN()
	m.InitWeights(42)
	h, w, c := m.InputShape()
	in := NewTensor(h, w, c, 1.0/255)
	rng := rand.New(rand.NewSource(9))
	for i := range in.Data {
		in.Data[i] = uint8(rng.Intn(256))
	}
	res, err := s.Run(m, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Logits) != 10 {
		t.Fatalf("logits = %d, want 10", len(res.Logits))
	}
	if got := res.Argmax(); got < 0 || got > 9 {
		t.Errorf("Argmax = %d", got)
	}
	if res.ComputeCycles == 0 || res.ArraysUsed == 0 {
		t.Errorf("no in-array work recorded: %+v", res)
	}
	// Wrong input shape must be rejected.
	if _, err := s.Run(m, NewTensor(2, 2, 1, 1)); err == nil {
		t.Error("wrong shape accepted")
	}
}

func TestVectorOps(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	a := make([]uint64, n)
	b := make([]uint64, n)
	rng := rand.New(rand.NewSource(5))
	for i := range a {
		a[i] = uint64(rng.Intn(256))
		b[i] = uint64(rng.Intn(256))
	}
	sum, st, err := s.VectorAdd(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChargedCycles != 9 {
		t.Errorf("add charged %d cycles, want n+1 = 9", st.ChargedCycles)
	}
	if st.Arrays != 4 { // 1000 elements over 256-lane arrays
		t.Errorf("arrays = %d, want 4", st.Arrays)
	}
	prod, stm, err := s.VectorMul(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if stm.ChargedCycles != 102 {
		t.Errorf("mul charged %d cycles, want 102", stm.ChargedCycles)
	}
	diff, _, err := s.VectorSub(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	maxv, _, err := s.VectorMax(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if sum[i] != a[i]+b[i] {
			t.Fatalf("add[%d] = %d, want %d", i, sum[i], a[i]+b[i])
		}
		if prod[i] != a[i]*b[i] {
			t.Fatalf("mul[%d] = %d, want %d", i, prod[i], a[i]*b[i])
		}
		if diff[i] != (a[i]-b[i])&0xff {
			t.Fatalf("sub[%d] = %d, want %d", i, diff[i], (a[i]-b[i])&0xff)
		}
		want := a[i]
		if b[i] > want {
			want = b[i]
		}
		if maxv[i] != want {
			t.Fatalf("max[%d] = %d, want %d", i, maxv[i], want)
		}
	}
	// The bit-serial win: time is flat in element count.
	if st.Seconds > 10e-9 {
		t.Errorf("1000-element add took %.2f ns of charged time, want < 10 ns", st.Seconds*1e9)
	}
}

func TestVectorOpsValidation(t *testing.T) {
	s, _ := New(DefaultConfig())
	if _, _, err := s.VectorAdd([]uint64{1}, []uint64{1, 2}, 8); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := s.VectorAdd([]uint64{1}, []uint64{1}, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, _, err := s.VectorAdd([]uint64{1}, []uint64{1}, 20); err == nil {
		t.Error("width 20 accepted")
	}
	huge := make([]uint64, s.Lanes()+1)
	if _, _, err := s.VectorAdd(huge, huge, 8); err == nil {
		t.Error("over-capacity vector accepted")
	}
}

func TestCapacitySweepFacade(t *testing.T) {
	var prev float64 = math.Inf(1)
	for _, slices := range []int{14, 18, 24} {
		cfg := DefaultConfig()
		cfg.Slices = slices
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := s.Estimate(InceptionV3(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if est.LatencySeconds >= prev {
			t.Errorf("slices=%d latency %.3f ms did not improve", slices, est.LatencySeconds*1e3)
		}
		prev = est.LatencySeconds
	}
}

func TestResNet18FacadeEstimate(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := ResNet18()
	if m.Name() != "resnet_18" {
		t.Errorf("name = %q", m.Name())
	}
	if h, w, c := m.InputShape(); h != 224 || w != 224 || c != 3 {
		t.Errorf("input %dx%dx%d", h, w, c)
	}
	est, err := s.Estimate(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.LatencySeconds <= 0 || est.LatencySeconds > 5e-3 {
		t.Errorf("ResNet-18 latency %.3f ms", est.LatencySeconds*1e3)
	}
	// Half the weights of Inception → visibly lower filter-load time.
	inc, err := s.Estimate(InceptionV3(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Phase("filter-load") >= inc.Phase("filter-load") {
		t.Error("ResNet-18 filter loading should be cheaper than Inception v3's")
	}
}

func TestSmallResNetRunMatchesReference(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Slices = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := SmallResNet()
	m.InitWeights(8)
	h, w, c := m.InputShape()
	in := NewTensor(h, w, c, 1.0/255)
	for i := range in.Data {
		in.Data[i] = uint8(i * 31)
	}
	got, err := s.Run(m, in)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.RunReference(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Output.Data {
		if got.Output.Data[i] != ref.Output.Data[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
	for i := range ref.Logits {
		if got.Logits[i] != ref.Logits[i] {
			t.Fatalf("logit %d differs", i)
		}
	}
}
