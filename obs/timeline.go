package obs

import "time"

// TimelinePoint is one sample of the serving tier's time series. Depth
// and occupancy fields are instantaneous (the state at T); counter
// fields are windowed (what happened inside (T−window, T], where the
// window is the timeline's Interval for every sample but a possibly
// shorter final one). Summing a windowed field over all samples of a
// run yields the run's total.
type TimelinePoint struct {
	// T is the sample time — the end of the sampled window — relative
	// to the run's t = 0.
	T time.Duration `json:"t_ns"`
	// QueueDepth is the admitted-but-undispatched request count at T.
	QueueDepth int `json:"queue_depth"`
	// BusyGroups is how many replica groups are busy at T (serving a
	// batch or restaging weights).
	BusyGroups int `json:"busy_groups"`
	// Offered, Served and Rejected count the window's arrivals,
	// completions and queue-full rejections.
	Offered  int `json:"offered"`
	Served   int `json:"served"`
	Rejected int `json:"rejected,omitempty"`
	// WarmDispatches and ColdDispatches split the window's batch
	// dispatches by whether the group already staged the batch's model.
	WarmDispatches int `json:"warm_dispatches"`
	ColdDispatches int `json:"cold_dispatches"`
	// Restages counts the window's planner-driven weight stagings,
	// Replans its applied controller re-plans.
	Restages int `json:"restages,omitempty"`
	Replans  int `json:"replans,omitempty"`
	// CacheHits counts the window's front-cache hits — requests served
	// at admission without touching a replica group. Always 0 (and
	// omitted) when the run has no cache.
	CacheHits int `json:"cache_hits,omitempty"`
	// GroupUtil is each replica group's busy fraction of the window, in
	// group-ordinal order. Virtual-clock samples integrate exactly;
	// wall-clock samples charge a batch's busy time at completion, so a
	// window's fraction can exceed 1 when a long batch completes in it.
	GroupUtil []float64 `json:"group_util"`
	// MixDrift is the drift controller's total-variation distance
	// between the active plan's mix and the observed served mix at T; 0
	// when no controller is attached.
	MixDrift float64 `json:"mix_drift,omitempty"`
}

// Timeline is a run's sampled time series: one point per Interval, plus
// a shorter final window when the run does not end on a boundary.
type Timeline struct {
	Interval time.Duration   `json:"interval_ns"`
	Samples  []TimelinePoint `json:"samples"`
}
