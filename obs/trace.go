// Package obs provides the serving tier's observability primitives: a
// Chrome trace-event recorder (viewable in Perfetto / chrome://tracing)
// and the time-series timeline types the load drivers sample into.
//
// The recorder is deliberately clock-agnostic: callers stamp events
// with whatever clock they run on. serve.Simulate stamps its virtual
// clock, so a trace of a simulated run serializes byte-identically on
// every run; the real serve.Server stamps wall-clock offsets from its
// start. Events carry no maps or pointers into live state — every
// field marshals in declaration order — so serialization is
// deterministic whenever the emission order is.
package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Phase values of the Chrome trace-event format (the ph field).
const (
	// PhaseComplete is a span: Ts marks its start, Dur its length.
	PhaseComplete = "X"
	// PhaseInstant is a point event; Scope says how wide to draw it.
	PhaseInstant = "i"
	// PhaseMetadata names processes and lanes (thread_name events).
	PhaseMetadata = "M"
)

// Args is the typed payload of a trace event. Only the fields relevant
// to an event's kind are set; the rest are omitted from JSON, so args
// objects stay small and deterministic (no map iteration order).
type Args struct {
	// Name labels the process or lane in PhaseMetadata events.
	Name string `json:"name,omitempty"`
	// Model is the batch's / restage's model.
	Model string `json:"model,omitempty"`
	// Batch is the dispatched micro-batch's request count.
	Batch int `json:"batch,omitempty"`
	// Seq is an ordinal: the batch number for queue/batch spans, the
	// re-plan number for replan instants.
	Seq int `json:"seq,omitempty"`
	// Cold marks a batch that paid the weight reload.
	Cold bool `json:"cold,omitempty"`
	// From is the model a restage evicted ("" = the group was free or
	// unknown on the wall clock).
	From string `json:"from,omitempty"`
	// Drift is the controller's mix total-variation distance that
	// triggered a re-plan.
	Drift float64 `json:"drift,omitempty"`
	// Restages is the number of group restages a re-plan ordered.
	Restages int `json:"restages,omitempty"`
}

// Event is one Chrome trace event. Timestamps and durations are in
// microseconds, the unit the format mandates; Micros converts from a
// clock offset.
type Event struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat,omitempty"`
	Phase string  `json:"ph"`
	Ts    float64 `json:"ts"`
	Dur   float64 `json:"dur,omitempty"`
	Pid   int     `json:"pid"`
	Tid   int     `json:"tid"`
	// Scope sizes PhaseInstant events ("t" = thread-wide, the lane).
	Scope string `json:"s,omitempty"`
	// Cname is a viewer color hint ("good", "bad", "terrible").
	Cname string `json:"cname,omitempty"`
	Args  *Args  `json:"args,omitempty"`
}

// Micros converts a clock offset to the trace format's microsecond
// timestamps.
func Micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// Trace is an append-only recorder of trace events, safe for
// concurrent use. The zero value is ready to record.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends one event.
func (t *Trace) Emit(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in emission order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// WriteJSON writes the trace in the Chrome trace-event JSON object
// format ({"traceEvents": [...]}), loadable in Perfetto
// (ui.perfetto.dev) and chrome://tracing. Events are ordered metadata
// first, then by timestamp, with ties kept in emission order — so a
// recorder fed deterministically (the virtual clock) serializes
// byte-identically on every run.
func (t *Trace) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		mi, mj := events[i].Phase == PhaseMetadata, events[j].Phase == PhaseMetadata
		if mi != mj {
			return mi
		}
		return !mi && events[i].Ts < events[j].Ts
	})
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, e := range events {
		blob, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.Write(blob); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
