package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestMicros(t *testing.T) {
	if got := Micros(1500 * time.Nanosecond); got != 1.5 {
		t.Fatalf("Micros(1.5µs) = %v", got)
	}
	if got := Micros(3 * time.Second); got != 3e6 {
		t.Fatalf("Micros(3s) = %v", got)
	}
	if got := Micros(0); got != 0 {
		t.Fatalf("Micros(0) = %v", got)
	}
}

// TestWriteJSONOrdering: serialization puts metadata events first, then
// sorts by timestamp with ties kept in emission order — the contract
// that makes a deterministically fed recorder serialize byte-identically.
func TestWriteJSONOrdering(t *testing.T) {
	var tr Trace
	tr.Emit(Event{Name: "late", Phase: PhaseComplete, Ts: 20, Dur: 1})
	tr.Emit(Event{Name: "tie-a", Phase: PhaseInstant, Ts: 10, Scope: "t"})
	tr.Emit(Event{Name: "thread_name", Phase: PhaseMetadata, Tid: 1, Args: &Args{Name: "lane"}})
	tr.Emit(Event{Name: "tie-b", Phase: PhaseInstant, Ts: 10, Scope: "t"})
	tr.Emit(Event{Name: "early", Phase: PhaseComplete, Ts: 1, Dur: 2})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string  `json:"displayTimeUnit"`
		TraceEvents     []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q, want ms", doc.DisplayTimeUnit)
	}
	var names []string
	for _, e := range doc.TraceEvents {
		names = append(names, e.Name)
	}
	want := []string{"thread_name", "early", "tie-a", "tie-b", "late"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("serialized order %v, want %v", names, want)
	}
	// Emission remains untouched: Events keeps emission order and the
	// recorder serializes identically a second time.
	if got := tr.Events(); got[0].Name != "late" || len(got) != 5 {
		t.Fatalf("Events reordered or resized: %v", got)
	}
	var again bytes.Buffer
	if err := tr.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two serializations of the same trace differ")
	}
}

// TestEventJSONOmitsEmpty: optional fields (and unset Args members) stay
// out of the JSON so event lines carry only what their kind needs.
func TestEventJSONOmitsEmpty(t *testing.T) {
	blob, err := json.Marshal(Event{Name: "reject", Phase: PhaseInstant, Ts: 5, Tid: 2, Scope: "t"})
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{`"dur"`, `"cat"`, `"cname"`, `"args"`} {
		if bytes.Contains(blob, []byte(absent)) {
			t.Fatalf("instant event leaked %s: %s", absent, blob)
		}
	}
	blob, err = json.Marshal(Event{Name: "b", Phase: PhaseComplete, Ts: 1, Dur: 2,
		Args: &Args{Model: "m", Batch: 3, Cold: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(blob, []byte(`"args":{"model":"m","batch":3,"cold":true}`)) {
		t.Fatalf("args did not marshal minimally: %s", blob)
	}
}

// TestTimelineJSONRoundTrip: a timeline survives marshal/unmarshal and
// omits its optional counters when zero.
func TestTimelineJSONRoundTrip(t *testing.T) {
	tl := Timeline{Interval: time.Second, Samples: []TimelinePoint{
		{T: time.Second, QueueDepth: 3, BusyGroups: 2, Offered: 10, Served: 8,
			WarmDispatches: 2, ColdDispatches: 1, GroupUtil: []float64{0.5, 1}},
		{T: 2 * time.Second, Offered: 4, Served: 6, Rejected: 1, Restages: 2,
			Replans: 1, GroupUtil: []float64{0, 0.25}, MixDrift: 0.3},
	}}
	blob, err := json.Marshal(tl)
	if err != nil {
		t.Fatal(err)
	}
	var back Timeline
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Interval != tl.Interval || len(back.Samples) != 2 ||
		back.Samples[1].MixDrift != 0.3 || back.Samples[0].GroupUtil[1] != 1 {
		t.Fatalf("round-trip mangled the timeline: %+v", back)
	}
	first, err := json.Marshal(tl.Samples[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{`"rejected"`, `"restages"`, `"replans"`, `"mix_drift"`} {
		if bytes.Contains(first, []byte(absent)) {
			t.Fatalf("zero-valued optional counter %s leaked: %s", absent, first)
		}
	}
}
