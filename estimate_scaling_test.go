package neuralcache

import (
	"math"
	"testing"
)

func scalingSystem(t *testing.T, slices, sockets int) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Slices = slices
	cfg.Sockets = sockets
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestThroughputLinearInSockets guards the law the serve scheduler's
// socket sharding is built on: latency is per-socket, so Estimate
// throughput must scale exactly linearly in Sockets (§VI-B).
func TestThroughputLinearInSockets(t *testing.T) {
	for _, build := range []func() *Model{InceptionV3, ResNet18} {
		m := build()
		base := scalingSystem(t, 14, 1)
		ref, err := base.Estimate(m, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, sockets := range []int{2, 4, 8} {
			est, err := scalingSystem(t, 14, sockets).Estimate(m, 1)
			if err != nil {
				t.Fatal(err)
			}
			if est.LatencySeconds != ref.LatencySeconds {
				t.Fatalf("%s: latency changed with sockets: %g vs %g",
					m.Name(), est.LatencySeconds, ref.LatencySeconds)
			}
			want := ref.ThroughputPerSec * float64(sockets)
			if rel := math.Abs(est.ThroughputPerSec-want) / want; rel > 1e-9 {
				t.Fatalf("%s: %d sockets: throughput %g, want %g (linear)",
					m.Name(), sockets, est.ThroughputPerSec, want)
			}
		}
	}
}

// TestThroughputMonotonicInSlices guards the other scheduler
// assumption: a bigger cache never serves slower. Throughput must rise
// monotonically through the paper's Table IV capacity points, and
// strictly from the smallest to the largest.
func TestThroughputMonotonicInSlices(t *testing.T) {
	slices := []int{7, 14, 18, 24}
	for _, build := range []func() *Model{InceptionV3, ResNet18} {
		m := build()
		var last float64
		var first float64
		for i, n := range slices {
			est, err := scalingSystem(t, n, 2).Estimate(m, 1)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				first = est.ThroughputPerSec
			} else if est.ThroughputPerSec < last {
				t.Fatalf("%s: throughput fell from %g to %g going %d -> %d slices",
					m.Name(), last, est.ThroughputPerSec, slices[i-1], n)
			}
			last = est.ThroughputPerSec
		}
		if last <= first {
			t.Fatalf("%s: throughput flat across %d -> %d slices (%g vs %g)",
				m.Name(), slices[0], slices[len(slices)-1], first, last)
		}
	}
}

// TestEstimateReplica pins the per-slice service-time hook the serve
// scheduler prices dispatches with: a replica is one slice of one
// socket, so it must be slower than the full cache but still finite,
// and Replicas() must count Slices × Sockets.
func TestEstimateReplica(t *testing.T) {
	sys := scalingSystem(t, 14, 2)
	if got := sys.Replicas(); got != 28 {
		t.Fatalf("Replicas() = %d, want 28", got)
	}
	for _, build := range []func() *Model{InceptionV3, ResNet18} {
		m := build()
		full, err := sys.Estimate(m, 1)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.EstimateReplica(m, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.LatencySeconds <= full.LatencySeconds {
			t.Fatalf("%s: replica latency %g not above full-cache latency %g",
				m.Name(), rep.LatencySeconds, full.LatencySeconds)
		}
		if rep.LatencySeconds <= 0 || math.IsInf(rep.LatencySeconds, 0) || math.IsNaN(rep.LatencySeconds) {
			t.Fatalf("%s: degenerate replica latency %g", m.Name(), rep.LatencySeconds)
		}
		// Batching a replica amortizes per-layer filter loads: pricing a
		// batch of 8 must beat 8 batch-1 dispatches.
		b8, err := sys.EstimateReplica(m, 8)
		if err != nil {
			t.Fatal(err)
		}
		if b8.LatencySeconds >= 8*rep.LatencySeconds {
			t.Fatalf("%s: batch-8 replica latency %g not below 8x batch-1 %g",
				m.Name(), b8.LatencySeconds, 8*rep.LatencySeconds)
		}
	}
}

// TestReplicaGroupFacade pins the k-slice generalization of the replica
// hook: group counts, the latency/capacity trade-off across k, reload
// invariance in k, and the divisibility contract.
func TestReplicaGroupFacade(t *testing.T) {
	sys := scalingSystem(t, 14, 2)
	if got := sys.GroupSize(); got != 1 {
		t.Fatalf("default GroupSize() = %d, want 1", got)
	}
	if got := sys.ReplicaGroups(); got != 28 {
		t.Fatalf("default ReplicaGroups() = %d, want 28 (= Replicas)", got)
	}
	m := InceptionV3()

	// EstimateReplica at the default group size is EstimateReplicaGroup(1).
	r1, err := sys.EstimateReplica(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := sys.EstimateReplicaGroup(m, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.LatencySeconds != g1.LatencySeconds {
		t.Fatalf("EstimateReplica %g != EstimateReplicaGroup(1) %g", r1.LatencySeconds, g1.LatencySeconds)
	}

	// Intra-group parallelism: per-batch latency strictly falls with k,
	// but sub-linearly (the DRAM-bound phases do not parallelize), so
	// aggregate capacity ReplicaGroups(k)/latency(k) falls too.
	var lastLat, lastCap float64
	for i, k := range []int{1, 2, 7, 14} {
		est, err := sys.EstimateReplicaGroup(m, 1, k)
		if err != nil {
			t.Fatal(err)
		}
		groups := 14 * 2 / k
		capacity := float64(groups) / est.LatencySeconds
		if i > 0 {
			if est.LatencySeconds >= lastLat {
				t.Fatalf("k=%d: group latency %g not below %g", k, est.LatencySeconds, lastLat)
			}
			if capacity >= lastCap {
				t.Fatalf("k=%d: aggregate capacity %g rose above %g; slice parallelism cannot be super-linear",
					k, capacity, lastCap)
			}
		}
		lastLat, lastCap = est.LatencySeconds, capacity
	}

	// One reload warms the whole group: the DRAM-bound staging cost is
	// identical for every k.
	base, err := sys.EstimateReloadGroup(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 7, 14} {
		rel, err := sys.EstimateReloadGroup(m, k)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Seconds != base.Seconds || rel.FilterBytes != base.FilterBytes {
			t.Fatalf("k=%d reload %+v differs from k=1 %+v", k, rel, base)
		}
	}

	// Divisibility contract.
	for _, k := range []int{-1, 0, 3, 28} {
		if _, err := sys.EstimateReplicaGroup(m, 1, k); err == nil {
			t.Fatalf("EstimateReplicaGroup accepted group size %d over 14 slices", k)
		}
	}

	// A system configured with GroupSize prices EstimateReplica on that
	// group and counts groups accordingly.
	cfg := DefaultConfig()
	cfg.GroupSize = 7
	grouped, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if grouped.GroupSize() != 7 || grouped.ReplicaGroups() != 4 || grouped.Replicas() != 28 {
		t.Fatalf("grouped system: GroupSize %d ReplicaGroups %d Replicas %d",
			grouped.GroupSize(), grouped.ReplicaGroups(), grouped.Replicas())
	}
	want, err := sys.EstimateReplicaGroup(m, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := grouped.EstimateReplica(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.LatencySeconds != want.LatencySeconds {
		t.Fatalf("configured-group EstimateReplica %g != EstimateReplicaGroup(7) %g",
			got.LatencySeconds, want.LatencySeconds)
	}
}

// TestEstimateReloadFacade pins the §IV-E weight-reload hook the serve
// scheduler charges on model switches: the full filter footprint
// streamed at DRAM effective bandwidth lower-bounds it, and it scales
// with the model's weight footprint.
func TestEstimateReloadFacade(t *testing.T) {
	sys := scalingSystem(t, 14, 2)
	inception, resnet := InceptionV3(), ResNet18()
	ri, err := sys.EstimateReload(inception)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := sys.EstimateReload(resnet)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*ReloadEstimate{ri, rr} {
		if r.Seconds <= 0 || math.IsInf(r.Seconds, 0) || math.IsNaN(r.Seconds) {
			t.Fatalf("%s: degenerate reload %g", r.Model, r.Seconds)
		}
		// No reload can beat streaming the footprint at the 68 GB/s peak
		// DRAM bandwidth (the model actually pays the slower 11 GB/s
		// set-strided effective rate, pinned exactly in internal/core).
		if lo := float64(r.FilterBytes) / 68e9; r.Seconds < lo {
			t.Fatalf("%s: reload %g beats peak DRAM bandwidth (%g)", r.Model, r.Seconds, lo)
		}
	}
	if ri.FilterBytes != inception.FilterBytes() {
		t.Fatalf("inception reload footprint %d, want %d", ri.FilterBytes, inception.FilterBytes())
	}
	// Inception's ~24 MB filter footprint dwarfs ResNet-18's ~12 MB, so
	// its reload must cost more.
	if ri.Seconds <= rr.Seconds {
		t.Fatalf("inception reload %g not above resnet %g", ri.Seconds, rr.Seconds)
	}
	// Reload is a staging cost, not a full inference: it stays below the
	// replica's batch-1 service time.
	rep, err := sys.EstimateReplica(inception, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Seconds >= rep.LatencySeconds {
		t.Fatalf("reload %g not below batch-1 replica service %g", ri.Seconds, rep.LatencySeconds)
	}
}

// TestEstimateDensityFacade pins the measured-sparsity pricing hook:
// density 1 reproduces the dense estimate exactly, lower densities
// price strictly faster (full cache and replica group alike), and
// out-of-range densities are rejected.
func TestEstimateDensityFacade(t *testing.T) {
	sys := scalingSystem(t, 14, 2)
	m := InceptionV3()

	dense, err := sys.Estimate(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	same, err := sys.EstimateDensity(m, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if same.LatencySeconds != dense.LatencySeconds {
		t.Fatalf("EstimateDensity(1) latency %g != Estimate %g", same.LatencySeconds, dense.LatencySeconds)
	}
	sparse, err := sys.EstimateDensity(m, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.LatencySeconds >= dense.LatencySeconds {
		t.Fatalf("density 0.5 latency %g not below dense %g", sparse.LatencySeconds, dense.LatencySeconds)
	}

	gDense, err := sys.EstimateReplicaGroup(m, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	gSame, err := sys.EstimateReplicaGroupDensity(m, 4, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gSame.LatencySeconds != gDense.LatencySeconds {
		t.Fatalf("group density 1 latency %g != dense %g", gSame.LatencySeconds, gDense.LatencySeconds)
	}
	gSparse, err := sys.EstimateReplicaGroupDensity(m, 4, 7, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if gSparse.LatencySeconds >= gDense.LatencySeconds {
		t.Fatalf("group density 0.6 latency %g not below dense %g", gSparse.LatencySeconds, gDense.LatencySeconds)
	}

	for _, d := range []float64{0, -1, 1.5} {
		if _, err := sys.EstimateDensity(m, 1, d); err == nil {
			t.Errorf("EstimateDensity accepted density %g", d)
		}
		if _, err := sys.EstimateReplicaGroupDensity(m, 1, 1, d); err == nil {
			t.Errorf("EstimateReplicaGroupDensity accepted density %g", d)
		}
	}
}
