package neuralcache_test

import (
	"fmt"

	"neuralcache"
)

// Example shows the three entry points: facts about the modeled cache,
// in-cache vector arithmetic, and pricing a DNN inference.
func Example() {
	sys, err := neuralcache.New(neuralcache.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println("arrays:", sys.Arrays())
	fmt.Println("lanes:", sys.Lanes())

	a := []uint64{1, 2, 3}
	b := []uint64{10, 20, 30}
	sum, stats, _ := sys.VectorAdd(a, b, 8)
	fmt.Println("sum:", sum, "in", stats.ChargedCycles, "cycles")
	// Output:
	// arrays: 4480
	// lanes: 1146880
	// sum: [11 22 33] in 9 cycles
}

// ExampleSystem_Estimate prices a batch-1 Inception v3 inference and
// reports the dominant phase, reproducing the shape of the paper's
// Figure 14.
func ExampleSystem_Estimate() {
	sys, _ := neuralcache.New(neuralcache.DefaultConfig())
	est, _ := sys.Estimate(neuralcache.InceptionV3(), 1)
	dominant, best := "", 0.0
	for _, p := range est.Phases {
		if p.Seconds > best {
			dominant, best = p.Phase, p.Seconds
		}
	}
	fmt.Println("dominant phase:", dominant)
	fmt.Println("layers:", len(est.Layers))
	// Output:
	// dominant phase: filter-load
	// layers: 20
}

// ExampleSystem_Run executes a small CNN bit-accurately on the simulated
// arrays; the result matches the host integer reference byte for byte.
func ExampleSystem_Run() {
	cfg := neuralcache.DefaultConfig()
	cfg.Slices = 1
	sys, _ := neuralcache.New(cfg)

	m := neuralcache.SmallCNN()
	m.InitWeights(7)
	h, w, c := m.InputShape()
	in := neuralcache.NewTensor(h, w, c, 1.0/255)
	for i := range in.Data {
		in.Data[i] = uint8(i % 251)
	}

	inCache, _ := sys.Run(m, in)
	ref, _ := m.RunReference(in)
	identical := true
	for i := range ref.Output.Data {
		if inCache.Output.Data[i] != ref.Output.Data[i] {
			identical = false
		}
	}
	fmt.Println("in-cache == reference:", identical)
	fmt.Println("classes:", len(inCache.Logits))
	// Output:
	// in-cache == reference: true
	// classes: 10
}

// ExampleModel_LayerTable regenerates a row of the paper's Table I from
// the model's shapes alone.
func ExampleModel_LayerTable() {
	rows := neuralcache.InceptionV3().LayerTable()
	r := rows[2]
	fmt.Println(r.Name, r.Convolutions, "convolutions")
	// Output:
	// Conv2D_2b_3x3 1382976 convolutions
}

// ExampleCPUBaseline compares against the paper's measured CPU anchor.
func ExampleCPUBaseline() {
	cpu := neuralcache.CPUBaseline()
	fmt.Printf("%s: %.1f ms, %.2f W\n", cpu.Name(), cpu.LatencySeconds()*1e3, cpu.PowerW())
	// Output:
	// CPU - Xeon E5: 86.6 ms, 105.56 W
}
