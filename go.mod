module neuralcache

go 1.22
