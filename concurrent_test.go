package neuralcache

import (
	"sync"
	"testing"
)

// A System is immutable after New: Run and Estimate build all mutable
// state (the simulated cache, the report) per call. These tests pin that
// contract down by hammering one System from several goroutines; run them
// under `go test -race` to turn any regression into a hard failure.

func TestConcurrentRunSameSystem(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Slices = 1
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := SmallCNN()
	m.InitWeights(7)
	h, w, c := m.InputShape()
	in := NewTensor(h, w, c, 1.0/255)
	for i := range in.Data {
		in.Data[i] = uint8(i * 11)
	}
	want, err := sys.Run(m, in)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 4
	results := make([]*InferenceResult, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = sys.Run(m, in)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		r := results[g]
		for i := range want.Output.Data {
			if r.Output.Data[i] != want.Output.Data[i] {
				t.Fatalf("goroutine %d: output byte %d differs", g, i)
			}
		}
		if r.ComputeCycles != want.ComputeCycles || r.AccessCycles != want.AccessCycles ||
			r.ArraysUsed != want.ArraysUsed {
			t.Fatalf("goroutine %d: counters differ: %+v vs %+v", g, r, want)
		}
	}
}

func TestConcurrentRunAndEstimateSameSystem(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Slices = 1
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := SmallCNN()
	m.InitWeights(3)
	h, w, c := m.InputShape()
	in := NewTensor(h, w, c, 1.0/255)
	for i := range in.Data {
		in.Data[i] = uint8(i * 5)
	}
	wantEst, err := sys.Estimate(m, 1)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 2; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := sys.Run(m, in); err != nil {
				errCh <- err
			}
		}()
		go func() {
			defer wg.Done()
			est, err := sys.Estimate(m, 1)
			if err != nil {
				errCh <- err
				return
			}
			if est.LatencySeconds != wantEst.LatencySeconds {
				t.Errorf("concurrent estimate latency %g, want %g", est.LatencySeconds, wantEst.LatencySeconds)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
