package neuralcache

import (
	"math/rand"
	"testing"
)

func faultTestSetup(t *testing.T) (*System, *Model, *Tensor) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Slices = 1
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := SmallCNN()
	m.InitWeights(55)
	h, w, c := m.InputShape()
	in := NewTensor(h, w, c, 1.0/255)
	r := rand.New(rand.NewSource(66))
	for i := range in.Data {
		in.Data[i] = uint8(r.Intn(256))
	}
	return sys, m, in
}

func TestRunWithFaultsNoFaultsEqualsRun(t *testing.T) {
	sys, m, in := faultTestSetup(t)
	clean, err := sys.Run(m, in)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := sys.RunWithFaults(m, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Output.Data {
		if clean.Output.Data[i] != zero.Output.Data[i] {
			t.Fatal("empty fault list changed the output")
		}
	}
}

func TestRunWithFaultsCorruptsHeavyCampaign(t *testing.T) {
	sys, m, in := faultTestSetup(t)
	clean, err := sys.Run(m, in)
	if err != nil {
		t.Fatal(err)
	}
	// A heavy campaign: stuck MSBs across many lanes of the first arrays
	// must visibly corrupt the logits.
	var faults []Fault
	for lane := 0; lane < 256; lane += 3 {
		faults = append(faults, Fault{Array: 0, Row: 79, Lane: lane, Kind: FaultStuckAt1})
		faults = append(faults, Fault{Array: 1, Row: 79, Lane: lane, Kind: FaultStuckAt1})
	}
	dirty, err := sys.RunWithFaults(m, in, faults)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := range clean.Logits {
		if clean.Logits[i] != dirty.Logits[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Error("heavy stuck-at campaign left every logit untouched")
	}
}

func TestRunWithFaultsBNNet(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Slices = 1
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := BNNet()
	m.InitWeights(9)
	h, w, c := m.InputShape()
	in := NewTensor(h, w, c, 1.0/255)
	for i := range in.Data {
		in.Data[i] = uint8(i * 13)
	}
	// BNNet through the public facade, with and without faults.
	clean, err := sys.Run(m, in)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.RunReference(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Output.Data {
		if clean.Output.Data[i] != ref.Output.Data[i] {
			t.Fatalf("BNNet in-cache output %d differs from reference", i)
		}
	}
	if _, err := sys.RunWithFaults(m, in, []Fault{{Array: 0, Row: 10, Lane: 1, Kind: FaultDeadLane}}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultKindsExposed(t *testing.T) {
	if FaultStuckAt0 == FaultStuckAt1 || FaultStuckAt1 == FaultDeadLane {
		t.Error("fault kinds not distinct")
	}
}
