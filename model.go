package neuralcache

import (
	"fmt"
	"strings"

	"neuralcache/internal/nn"
	"neuralcache/internal/tensor"
)

// Model is a quantized network the system can estimate or run.
type Model struct {
	net *nn.Network
}

// InceptionV3 builds the paper's evaluation model (94 convolutional
// sub-layers in 20 top-level layers; Table I). Weights are uninitialized;
// call InitWeights before running inference (estimation is shape-only).
func InceptionV3() *Model { return &Model{net: nn.InceptionV3()} }

// SmallCNN builds a LeNet-scale network for fast bit-accurate runs.
func SmallCNN() *Model { return &Model{net: nn.SmallCNN()} }

// BranchyCNN builds a miniature Inception-style network exercising
// branches, concatenation rescaling and global pooling.
func BranchyCNN() *Model { return &Model{net: nn.BranchyCNN()} }

// WideCNN builds a verification network whose first convolution spills
// across an array pair (512 lanes), exercising the cross-array
// partial-sum reduce of the functional engine.
func WideCNN() *Model { return &Model{net: nn.WideCNN()} }

// BNNet builds a verification network with a standalone §IV-D batch-norm
// layer (scalar multiply + shift + per-channel adds + requantize).
func BNNet() *Model { return &Model{net: nn.BNNet()} }

// SparseCNN builds SmallCNN with every convolution's weights coarsened
// to multiples of 16 — a net whose filter bit-columns are half zeros, so
// a Config.SkipZeroSlices run completes in strictly fewer compute cycles
// than the dense engine while producing byte-identical outputs.
func SparseCNN() *Model { return &Model{net: nn.SparseCNN()} }

// Int4CNN builds SmallCNN with every convolution declared 4-bit-weight:
// the engine stages four filter rows per weight and runs four multiplier
// slices per MAC, so the net completes in fewer compute cycles than its
// 8-bit twin independent of data — precision-proportional execution.
func Int4CNN() *Model { return &Model{net: nn.Int4CNN()} }

// ResNet18 builds a quantized ResNet-18 — the extension model exercising
// residual shortcut adds (identity and strided projections) on the
// in-cache element-wise adder.
func ResNet18() *Model { return &Model{net: nn.ResNet18()} }

// SmallResNet builds a residual verification network sized for
// bit-accurate functional runs.
func SmallResNet() *Model { return &Model{net: nn.SmallResNet()} }

// ModelNames lists the bundled models ModelByName accepts.
func ModelNames() []string {
	return []string{"inception", "resnet", "small", "smallresnet", "branchy", "wide", "bn", "sparse", "int4"}
}

// ModelByName builds a bundled model from its CLI name.
func ModelByName(name string) (*Model, error) {
	switch name {
	case "inception":
		return InceptionV3(), nil
	case "resnet":
		return ResNet18(), nil
	case "small":
		return SmallCNN(), nil
	case "smallresnet":
		return SmallResNet(), nil
	case "branchy":
		return BranchyCNN(), nil
	case "wide":
		return WideCNN(), nil
	case "bn":
		return BNNet(), nil
	case "sparse":
		return SparseCNN(), nil
	case "int4":
		return Int4CNN(), nil
	}
	return nil, fmt.Errorf("neuralcache: unknown model %q (have %s)",
		name, strings.Join(ModelNames(), ", "))
}

// Name returns the model name.
func (m *Model) Name() string { return m.net.Name }

// InputShape returns the H, W, C the model expects.
func (m *Model) InputShape() (h, w, c int) {
	return m.net.Input.H, m.net.Input.W, m.net.Input.C
}

// InitWeights populates deterministic synthetic quantized weights.
func (m *Model) InitWeights(seed int64) { m.net.InitWeights(seed) }

// MACs returns the multiply-accumulate count of one inference.
func (m *Model) MACs() int64 { return m.net.MACs() }

// FilterBytes returns the total 8-bit weight footprint.
func (m *Model) FilterBytes() int { return m.net.FilterBytes() }

// LayerParams is one row of the model's layer-parameter table (the
// paper's Table I for Inception v3).
type LayerParams struct {
	Name         string
	H, E         int
	RSMin, RSMax int
	CMin, CMax   int
	MMin, MMax   int
	Convolutions int
	FilterBytes  int
	InputBytes   int
}

// LayerTable derives the per-layer parameter table from the model's
// shapes.
func (m *Model) LayerTable() []LayerParams {
	rows := nn.TableI(m.net)
	out := make([]LayerParams, len(rows))
	for i, r := range rows {
		out[i] = LayerParams{
			Name: r.Name, H: r.H, E: r.E,
			RSMin: r.RSMin, RSMax: r.RSMax,
			CMin: r.CMin, CMax: r.CMax,
			MMin: r.MMin, MMax: r.MMax,
			Convolutions: r.Convs,
			FilterBytes:  r.FilterBytes,
			InputBytes:   r.InputBytes,
		}
	}
	return out
}

// Tensor is a quantized activation tensor in NHWC order with zero point 0
// (real value = Scale · Data[i]).
type Tensor struct {
	H, W, C int
	Scale   float64
	Data    []uint8
}

// NewTensor allocates a zeroed tensor.
func NewTensor(h, w, c int, scale float64) *Tensor {
	return &Tensor{H: h, W: w, C: c, Scale: scale, Data: make([]uint8, h*w*c)}
}

// At returns element (h, w, c).
func (t *Tensor) At(h, w, c int) uint8 { return t.Data[(h*t.W+w)*t.C+c] }

// Set stores element (h, w, c).
func (t *Tensor) Set(h, w, c int, v uint8) { t.Data[(h*t.W+w)*t.C+c] = v }

func (t *Tensor) internal() *tensor.Quant {
	q := tensor.NewQuant(tensor.Shape{H: t.H, W: t.W, C: t.C}, t.Scale)
	copy(q.Data, t.Data)
	return q
}

func runReference(net *nn.Network, q *tensor.Quant) (*tensor.Quant, *nn.Trace, error) {
	return nn.RunQuant(net, q, nn.QuantOptions{})
}

func fromInternal(q *tensor.Quant) *Tensor {
	out := &Tensor{H: q.Shape.H, W: q.Shape.W, C: q.Shape.C, Scale: q.Scale,
		Data: make([]uint8, len(q.Data))}
	copy(out.Data, q.Data)
	return out
}
