// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§V–§VI), plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark regenerates its experiment through
// the simulator and reports the reproduced quantities as custom metrics,
// so `go test -bench=. -benchmem` prints the full reproduction next to
// its timing.
package neuralcache_test

import (
	"fmt"
	"testing"

	"neuralcache"
	"neuralcache/internal/core"
	"neuralcache/internal/energy"
	"neuralcache/internal/experiments"
	"neuralcache/internal/isa"
	"neuralcache/internal/nn"
	"neuralcache/internal/sram"
	"neuralcache/internal/tensor"
	"neuralcache/internal/transpose"
)

func newSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	s, err := experiments.NewSuite()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTableI regenerates the Inception v3 layer-parameter table.
func BenchmarkTableI(b *testing.B) {
	s := newSuite(b)
	var rows int
	for i := 0; i < b.N; i++ {
		rows = s.TableI().Rows()
	}
	if rows != 20 {
		b.Fatalf("TableI rows = %d, want 20", rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkTableIII regenerates the energy/power comparison.
// Paper: CPU 9.137 J / 105.56 W, GPU 4.087 J / 112.87 W, NC 0.246 J /
// 52.92 W.
func BenchmarkTableIII(b *testing.B) {
	s := newSuite(b)
	var res experiments.TableIIIResult
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = s.TableIII()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.NCEnergyJ, "nc_J")
	b.ReportMetric(res.NCPowerW, "nc_W")
	b.ReportMetric(res.CPUEnergyJ/res.NCEnergyJ, "energy_vs_cpu_x")
	b.ReportMetric(res.GPUEnergyJ/res.NCEnergyJ, "energy_vs_gpu_x")
}

// BenchmarkTableIV regenerates the capacity-scaling table.
// Paper: 35 MB → 4.72 ms, 45 MB → 4.12 ms, 60 MB → 3.79 ms.
func BenchmarkTableIV(b *testing.B) {
	s := newSuite(b)
	var lats []float64
	for i := 0; i < b.N; i++ {
		var err error
		_, lats, err = s.TableIV()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lats[0]*1e3, "35MB_ms")
	b.ReportMetric(lats[1]*1e3, "45MB_ms")
	b.ReportMetric(lats[2]*1e3, "60MB_ms")
}

// BenchmarkFigure12 regenerates the area model.
// Paper: 7.5% per array, <2% of the die.
func BenchmarkFigure12(b *testing.B) {
	var a energy.AreaModel
	for i := 0; i < b.N; i++ {
		a = energy.XeonE5Area()
		_ = a.CacheOverheadMM2()
	}
	b.ReportMetric(a.ArrayOverheadFraction()*100, "array_overhead_pct")
	b.ReportMetric(a.DieOverheadFraction()*100, "die_overhead_pct")
}

// BenchmarkFigure13 regenerates the per-layer latency comparison.
func BenchmarkFigure13(b *testing.B) {
	s := newSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		if t.Rows() != 20 {
			b.Fatalf("Figure13 rows = %d", t.Rows())
		}
	}
}

// BenchmarkFigure14 regenerates the latency breakdown.
// Paper: filter 46%, input 15%, MAC 20%, reduce 10%, quant 5%, output 4%.
func BenchmarkFigure14(b *testing.B) {
	s := newSuite(b)
	var rep *core.Report
	for i := 0; i < b.N; i++ {
		var err error
		_, rep, err = s.Figure14()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Seconds.Fraction(core.PhaseFilterLoad)*100, "filter_pct")
	b.ReportMetric(rep.Seconds.Fraction(core.PhaseInputStream)*100, "input_pct")
	b.ReportMetric(rep.Seconds.Fraction(core.PhaseMAC)*100, "mac_pct")
	b.ReportMetric(rep.Seconds.Fraction(core.PhaseReduce)*100, "reduce_pct")
}

// BenchmarkFigure15 regenerates the total-latency comparison.
// Paper: 18.3× over CPU, 7.7× over GPU.
func BenchmarkFigure15(b *testing.B) {
	s := newSuite(b)
	var lats []float64
	for i := 0; i < b.N; i++ {
		var err error
		_, lats, err = s.Figure15()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lats[2]*1e3, "nc_ms")
	b.ReportMetric(lats[0]/lats[2], "speedup_vs_cpu_x")
	b.ReportMetric(lats[1]/lats[2], "speedup_vs_gpu_x")
}

// BenchmarkFigure16 regenerates the throughput-vs-batch curve.
// Paper: 604 inf/s at batch 256 (2.2× GPU, 12.4× CPU).
func BenchmarkFigure16(b *testing.B) {
	s := newSuite(b)
	var nc map[int]float64
	for i := 0; i < b.N; i++ {
		var err error
		_, nc, err = s.Figure16()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(nc[1], "batch1_infps")
	b.ReportMetric(nc[256], "batch256_infps")
}

// BenchmarkArithmeticCycles measures the stepped bit-serial microcode on a
// real simulated array (§III's primitives; the paper's closed forms are
// asserted in unit tests).
func BenchmarkArithmeticCycles(b *testing.B) {
	ops := []struct {
		name string
		op   func(a *sram.Array)
	}{
		{"Add8", func(a *sram.Array) { a.Add(0, 8, 16, 8) }},
		{"Mul8", func(a *sram.Array) { a.Multiply(0, 8, 32, 8) }},
		{"Div8", func(a *sram.Array) { a.Divide(0, 8, 64, 80, 100, 8) }},
		{"Reduce32x16", func(a *sram.Array) { a.Reduce(120, 160, 32, 16) }},
		{"MAC8", func(a *sram.Array) { a.MulAcc(0, 8, 200, 230, 8, 24) }},
	}
	for _, op := range ops {
		b.Run(op.name, func(b *testing.B) {
			var a sram.Array
			vals := make([]uint64, sram.BitLines)
			for i := range vals {
				vals[i] = uint64(i%255) + 1
			}
			a.WriteElements(0, 8, vals)
			a.WriteElements(8, 8, vals)
			a.WriteElements(120, 20, vals)
			a.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op.op(&a)
			}
			cycles := float64(a.Stats().ComputeCycles) / float64(b.N)
			b.ReportMetric(cycles, "array_cycles")
			b.ReportMetric(cycles*float64(b.N)*256/float64(b.N), "lane_ops")
		})
	}
}

// BenchmarkConv2bCaseStudy reproduces §VI-A's worked example.
// Paper: 43 serial iterations, 99.7% utilization, 0.0479 ms compute.
func BenchmarkConv2bCaseStudy(b *testing.B) {
	s := newSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.CaseStudy()
		if err != nil {
			b.Fatal(err)
		}
		if t.Rows() != 4 {
			b.Fatal("case study incomplete")
		}
	}
}

// BenchmarkFunctionalSmallCNN measures a full bit-accurate in-cache
// inference (every MAC as stepped microcode).
func BenchmarkFunctionalSmallCNN(b *testing.B) {
	cfg := neuralcache.DefaultConfig()
	cfg.Slices = 1
	sys, err := neuralcache.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m := neuralcache.SmallCNN()
	m.InitWeights(1)
	h, w, c := m.InputShape()
	in := neuralcache.NewTensor(h, w, c, 1.0/255)
	for i := range in.Data {
		in.Data[i] = uint8(i * 7)
	}
	b.ResetTimer()
	var res *neuralcache.InferenceResult
	for i := 0; i < b.N; i++ {
		res, err = sys.Run(m, in)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.ComputeCycles), "array_cycles")
}

// BenchmarkRunFunctional measures a full bit-accurate in-cache inference
// at different worker-pool sizes. The outputs, traces and cycle stats are
// bit-identical across all of them (locked in by
// core.TestParallelGoldenEquivalence); only wall-clock time changes. On a
// multi-core host, workers=4 should run ≥ 2× faster than workers=1; on a
// single-core CI runner the sub-benchmarks merely document the knob.
func BenchmarkRunFunctional(b *testing.B) {
	m := neuralcache.SmallCNN()
	m.InitWeights(1)
	h, w, c := m.InputShape()
	in := neuralcache.NewTensor(h, w, c, 1.0/255)
	for i := range in.Data {
		in.Data[i] = uint8(i * 7)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			cfg := neuralcache.DefaultConfig()
			cfg.Slices = 1
			cfg.Workers = workers
			sys, err := neuralcache.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var res *neuralcache.InferenceResult
			for i := 0; i < b.N; i++ {
				res, err = sys.Run(m, in)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.ComputeCycles), "array_cycles")
		})
	}
}

// BenchmarkRunFunctionalSparse measures zero-slice skipping on the
// sparsity-induced net (SparseCNN: 4-bit weights, so half of every
// filter byte's multiplier bit-columns are zero in all 256 lanes). The
// dense and skip sub-benchmarks produce byte-identical outputs (locked
// in by core.TestSkipZeroSlicesGoldenEquivalence); skip must report
// strictly fewer array_cycles, and the skipped_slices metric documents
// how much of the schedule was elided.
func BenchmarkRunFunctionalSparse(b *testing.B) {
	m := neuralcache.SparseCNN()
	m.InitWeights(1)
	h, w, c := m.InputShape()
	in := neuralcache.NewTensor(h, w, c, 1.0/255)
	for i := range in.Data {
		in.Data[i] = uint8(i * 7)
	}
	for _, mode := range []struct {
		name string
		skip bool
	}{{"dense", false}, {"skip", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := neuralcache.DefaultConfig()
			cfg.Slices = 1
			cfg.SkipZeroSlices = mode.skip
			sys, err := neuralcache.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var res *neuralcache.InferenceResult
			for i := 0; i < b.N; i++ {
				res, err = sys.Run(m, in)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.ComputeCycles), "array_cycles")
			if mode.skip {
				b.ReportMetric(float64(res.SkippedSlices), "skipped_slices")
				b.ReportMetric(float64(res.SkipCyclesSaved), "cycles_saved")
			}
		})
	}
}

// BenchmarkRunFunctionalParallel measures the multi-array path at the
// default worker count (GOMAXPROCS): WideCNN's 512-lane convolution
// spills across array pairs with interconnect-routed partial-sum reduce.
func BenchmarkRunFunctionalParallel(b *testing.B) {
	cfg := neuralcache.DefaultConfig()
	cfg.Slices = 1
	sys, err := neuralcache.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m := neuralcache.WideCNN()
	m.InitWeights(11)
	h, w, c := m.InputShape()
	in := neuralcache.NewTensor(h, w, c, 1.0/255)
	for i := range in.Data {
		in.Data[i] = uint8(i * 3)
	}
	b.ResetTimer()
	var res *neuralcache.InferenceResult
	for i := 0; i < b.N; i++ {
		res, err = sys.Run(m, in)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.ComputeCycles), "array_cycles")
	b.ReportMetric(float64(res.FabricBusCycles), "fabric_cycles")
}

// BenchmarkResNet18Estimate prices the extension model: ResNet-18 with
// in-cache residual adds (a result beyond the paper's evaluation).
func BenchmarkResNet18Estimate(b *testing.B) {
	sys, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	net := nn.ResNet18()
	var rep *core.Report
	for i := 0; i < b.N; i++ {
		rep, err = sys.Estimate(net, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Latency()*1e3, "latency_ms")
	b.ReportMetric(rep.AveragePowerWatts(), "power_W")
	b.ReportMetric(rep.Throughput(), "infps")
}

// --- Ablations (DESIGN.md §5) ---

func estimateWith(b *testing.B, mutate func(*core.Config)) float64 {
	b.Helper()
	cfg := core.DefaultConfig()
	mutate(&cfg)
	sys, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := sys.Estimate(nn.InceptionV3(), 1)
	if err != nil {
		b.Fatal(err)
	}
	return rep.Latency()
}

// BenchmarkAblationFilterPacking quantifies §IV-A's 1×1 filter packing
// two ways. First, the guarantee: without packing, Inception v3's
// 768-channel 1×1 convolutions need 1024 lanes and no longer fit a
// sense-amp-sharing array pair — the whole model fails to map (the paper:
// "by packing the filters ... it is guaranteed to fit within 2 arrays").
// Second, the speed: on a 1×1 layer that still maps unpacked
// (Conv2D_3b_1x1, C=64), packing shrinks lanes per convolution 8× and the
// reduction tree by 3 levels.
func BenchmarkAblationFilterPacking(b *testing.B) {
	oneByOne := &nn.Network{
		Name:  "conv3b_only",
		Input: nn.InceptionV3().Layers[4].(*nn.Conv2D).OutShape(tensorShape(73, 73, 64)),
	}
	// Rebuild just the 3b layer on its natural input.
	oneByOne.Input = tensorShape(73, 73, 64)
	oneByOne.Layers = []nn.Layer{&nn.Conv2D{
		LayerName: "Conv2D_3b_1x1", LayerGroup: "Conv2D_3b_1x1",
		R: 1, S: 1, Cin: 64, Cout: 80, Stride: 1, ReLU: true,
	}}

	var packed, unpacked float64
	var fullModelFails bool
	for i := 0; i < b.N; i++ {
		packed = estimateNetWith(b, oneByOne, func(c *core.Config) {})
		unpacked = estimateNetWith(b, oneByOne, func(c *core.Config) { c.Mapping.PackingEnabled = false })
		cfg := core.DefaultConfig()
		cfg.Mapping.PackingEnabled = false
		sys, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_, err = sys.Estimate(nn.InceptionV3(), 1)
		fullModelFails = err != nil
	}
	b.ReportMetric(packed*1e6, "packed_us")
	b.ReportMetric(unpacked*1e6, "unpacked_us")
	b.ReportMetric(unpacked/packed, "speedup_x")
	if !fullModelFails {
		b.Fatal("Inception v3 mapped without packing; §IV-A says wide 1x1 layers must not fit")
	}
	if unpacked <= packed {
		b.Fatalf("packing did not help on the 1x1 layer: %.3f vs %.3f us", packed*1e6, unpacked*1e6)
	}
}

func tensorShape(h, w, c int) (s tensor.Shape) {
	s.H, s.W, s.C = h, w, c
	return s
}

func estimateNetWith(b *testing.B, net *nn.Network, mutate func(*core.Config)) float64 {
	b.Helper()
	cfg := core.DefaultConfig()
	mutate(&cfg)
	sys, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := sys.Estimate(net, 1)
	if err != nil {
		b.Fatal(err)
	}
	return rep.Latency()
}

// BenchmarkAblationBankLatch compares input streaming with and without
// the 64-bit bank latch (§IV-C halves replicated input transfers).
func BenchmarkAblationBankLatch(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = estimateWith(b, func(c *core.Config) {})
		without = estimateWith(b, func(c *core.Config) { c.Fabric.BankLatch = false })
	}
	b.ReportMetric(with*1e3, "latch_ms")
	b.ReportMetric(without*1e3, "nolatch_ms")
	if without <= with {
		b.Fatalf("bank latch did not help: %.3f vs %.3f ms", with*1e3, without*1e3)
	}
}

// BenchmarkAblationTranspose compares the hardware TMU gateway against
// software (SIMD shuffle/pack) transposition for one inference's filter
// volume (§III-F).
func BenchmarkAblationTranspose(b *testing.B) {
	filterBytes := nn.InceptionV3().FilterBytes()
	var tmuCycles, swCycles uint64
	for i := 0; i < b.N; i++ {
		tmuCycles = transpose.GatewayCycles(filterBytes)
		swCycles = uint64(filterBytes/1024+1) * transpose.SoftwareTransposeCyclesPerKB
	}
	b.ReportMetric(float64(tmuCycles), "tmu_cycles")
	b.ReportMetric(float64(swCycles), "software_cycles")
	b.ReportMetric(float64(swCycles)/float64(tmuCycles), "tmu_advantage_x")
}

// BenchmarkAblationBatchDump quantifies the §IV-E reserved-way spill: the
// share of batch latency spent dumping/reloading outputs through DRAM.
func BenchmarkAblationBatchDump(b *testing.B) {
	s := newSuite(b)
	for _, batch := range []int{1, 16, 256} {
		b.Run(byteName(batch), func(b *testing.B) {
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = s.Sys.Estimate(s.Net, batch)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Seconds[core.PhaseDRAMDump]*1e3, "dump_ms")
			b.ReportMetric(rep.Seconds.Fraction(core.PhaseDRAMDump)*100, "dump_pct")
		})
	}
}

func byteName(batch int) string {
	switch batch {
	case 1:
		return "batch1"
	case 16:
		return "batch16"
	default:
		return "batch256"
	}
}

// BenchmarkAblationBitWidth sweeps the operand precision (the paper's
// flexible bit-width argument, §III-A): latency scales superlinearly with
// width because multiply is quadratic in n.
func BenchmarkAblationBitWidth(b *testing.B) {
	for _, bits := range []int{4, 8, 16} {
		bits := bits
		b.Run(map[int]string{4: "4bit", 8: "8bit", 16: "16bit"}[bits], func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				lat = estimateWith(b, func(c *core.Config) {
					c.Cost.ActBits = bits
					c.Cost.AccBits = 3 * bits
				})
			}
			b.ReportMetric(lat*1e3, "latency_ms")
			b.ReportMetric(float64(isa.ChargedCycles(isa.Instruction{
				Op: isa.OpMulAcc, Width: bits, AccWidth: 3 * bits,
			})), "mac_cycles")
		})
	}
}
