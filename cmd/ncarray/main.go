// Command ncarray demonstrates one 8 KB compute SRAM array executing
// bit-serial arithmetic: it loads vectors in transposed layout, runs the
// paper's §III primitives (add, multiply, divide, reduction), verifies
// them against host arithmetic, and prints the emergent cycle counts next
// to the paper's closed forms.
//
// Usage:
//
//	ncarray
//	ncarray -bits 12 -seed 3
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"neuralcache/internal/isa"
	"neuralcache/internal/report"
	"neuralcache/internal/sram"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncarray: ")
	var (
		bits = flag.Int("bits", 8, "operand width in bits (2..16)")
		seed = flag.Int64("seed", 1, "operand seed")
	)
	flag.Parse()
	n := *bits
	if n < 2 || n > 16 {
		log.Fatalf("bits %d outside 2..16", n)
	}

	r := rand.New(rand.NewSource(*seed))
	a := make([]uint64, sram.BitLines)
	b := make([]uint64, sram.BitLines)
	mask := uint64(1)<<uint(n) - 1
	for i := range a {
		a[i] = r.Uint64() & mask
		b[i] = r.Uint64() & mask
		if b[i] == 0 {
			b[i] = 1
		}
	}

	var arr sram.Array
	arr.WriteElements(0, n, a)
	arr.WriteElements(n, n, b)
	fmt.Printf("one 8KB array: %d word lines x %d bit lines; %d lanes of %d-bit operands\n\n",
		sram.WordLines, sram.BitLines, sram.BitLines, n)

	t := report.NewTable("Bit-serial primitives (all 256 lanes in parallel)",
		"Op", "Cycles (microcode)", "Cycles (paper form)", "Verified")

	run := func(name string, paper int, op func() bool) {
		before := arr.Stats().ComputeCycles
		ok := op()
		cycles := arr.Stats().ComputeCycles - before
		verdict := "ok"
		if !ok {
			verdict = "MISMATCH"
		}
		t.Add(name, fmt.Sprint(cycles), fmt.Sprint(paper), verdict)
	}

	run(fmt.Sprintf("add %d-bit", n), isa.ChargedCycles(isa.Instruction{Op: isa.OpAdd, Width: n}), func() bool {
		arr.Add(0, n, 2*n, n)
		for i := range a {
			if arr.PeekElement(i, 2*n, n+1) != a[i]+b[i] {
				return false
			}
		}
		return true
	})
	run(fmt.Sprintf("mul %d-bit", n), isa.ChargedCycles(isa.Instruction{Op: isa.OpMultiply, Width: n}), func() bool {
		arr.Multiply(0, n, 3*n+1, n)
		for i := range a {
			if arr.PeekElement(i, 3*n+1, 2*n) != a[i]*b[i] {
				return false
			}
		}
		return true
	})
	run(fmt.Sprintf("div %d-bit", n), isa.ChargedCycles(isa.Instruction{Op: isa.OpDivide, Width: n}), func() bool {
		quot, rem, scratch := 6*n, 7*n, 8*n+1
		arr.Divide(0, n, quot, rem, scratch, n)
		for i := range a {
			if arr.PeekElement(i, quot, n) != a[i]/b[i] {
				return false
			}
		}
		return true
	})
	run("reduce 16 lanes @32-bit", 4*isa.ChargedCycles(isa.Instruction{Op: isa.OpReduceStep, Width: 32}), func() bool {
		base := 9*n + 4
		vals := make([]uint64, sram.BitLines)
		for i := range vals {
			vals[i] = a[i]
		}
		arr.WriteElements(base, 32, vals)
		arr.Reduce(base, base+32, 32, 16)
		for g := 0; g+16 <= sram.BitLines; g += 16 {
			var want uint64
			for i := 0; i < 16; i++ {
				want += a[g+i]
			}
			if arr.PeekElement(g, base, 32) != want {
				return false
			}
		}
		return true
	})

	fmt.Println(t.String())
	fmt.Printf("total: %d compute cycles, %d access cycles\n",
		arr.Stats().ComputeCycles, arr.Stats().AccessCycles)
	fmt.Println("\ntransposed layout of lane 0 (LSB at the lowest word line):")
	for i := 0; i < n; i++ {
		fmt.Printf("  row %3d: A bit %d = %d\n", i, i, arr.PeekRow(i).Bit(0))
	}
}
