package main

import (
	"strings"
	"testing"
	"time"

	"neuralcache/cluster"
)

// TestValidateFlagsObservabilityVsSweeps: -trace and -timeline record a
// single run, so every combination with either sweep axis must die the
// same way.
func TestValidateFlagsObservabilityVsSweeps(t *testing.T) {
	for _, f := range []runFlags{
		{backend: "analytic", trace: true, sweepGroups: true},
		{backend: "analytic", trace: true, sweepCache: true},
		{backend: "analytic", timeline: true, sweepGroups: true},
		{backend: "analytic", timeline: true, sweepCache: true},
		{backend: "analytic", trace: true, timeline: true, sweepGroups: true, sweepCache: true},
	} {
		err := validateFlags(f)
		if err == nil {
			t.Fatalf("%+v accepted", f)
		}
		if !strings.Contains(err.Error(), "record a single run") {
			t.Errorf("%+v: inconsistent rejection %q", f, err)
		}
	}
	// Either axis alone, or trace+timeline on one run, is fine.
	for _, f := range []runFlags{
		{backend: "analytic", trace: true, timeline: true},
		{backend: "analytic", sweepGroups: true},
		{backend: "analytic", sweepCache: true},
	} {
		if err := validateFlags(f); err != nil {
			t.Errorf("%+v rejected: %v", f, err)
		}
	}
}

// TestValidateFlagsMatrix walks the remaining cross-flag rules.
func TestValidateFlagsMatrix(t *testing.T) {
	bad := []struct {
		name string
		f    runFlags
		want string // error substring
	}{
		{"unknown backend", runFlags{backend: "quantum"}, "unknown backend"},
		{"replan without plan", runFlags{backend: "analytic", replan: true}, "-replan-threshold requires -plan"},
		{"zipf without reuse", runFlags{backend: "analytic", zipfSet: true}, "-zipf requires -reuse"},
		{"both sweeps", runFlags{backend: "analytic", sweepGroups: true, sweepCache: true}, "one axis per sweep"},
		{"plan with group sweep", runFlags{backend: "analytic", plan: true, sweepGroups: true}, "co-selects one group size"},
		{"plan with cache sweep", runFlags{backend: "analytic", plan: true, sweepCache: true}, "-sweep-cache cannot be combined with -plan"},
		{"group sweep on bitexact", runFlags{backend: "bitexact", sweepGroups: true}, "-sweep-groups needs the analytic backend"},
		{"cache sweep on bitexact", runFlags{backend: "bitexact", sweepCache: true}, "-sweep-cache needs the analytic backend"},
		{"replicas with group sweep", runFlags{backend: "analytic", sweepGroups: true, replicas: true}, "each point uses all groups"},
		{"debug-addr on analytic", runFlags{backend: "analytic", debugAddr: true}, "-debug-addr needs the wall-clock bitexact backend"},
		{"router without cluster", runFlags{backend: "analytic", routerSet: true}, "need -cluster"},
		{"lifecycle without cluster", runFlags{backend: "analytic", lifecycle: true}, "need -cluster"},
		{"rate-shift without cluster", runFlags{backend: "analytic", rateShift: true}, "need -cluster"},
		{"cluster on bitexact", runFlags{backend: "bitexact", cluster: true}, "-cluster simulates on the analytic backend"},
		{"cluster with sweep", runFlags{backend: "analytic", cluster: true, sweepCache: true}, "one fleet scenario"},
		{"cluster closed loop", runFlags{backend: "analytic", cluster: true, concurrency: true}, "open-loop fleet"},
		{"cluster with cache", runFlags{backend: "analytic", cluster: true, cache: true}, "without a front cache"},
		{"cluster with reuse", runFlags{backend: "analytic", cluster: true, reuse: true}, "without a front cache"},
		{"cluster with replicas", runFlags{backend: "analytic", cluster: true, replicas: true}, "-replicas cannot be combined with -cluster"},
		{"cluster with geometry", runFlags{backend: "analytic", cluster: true, geometrySet: true}, "geometry comes from the -cluster spec"},
	}
	for _, tc := range bad {
		err := validateFlags(tc.f)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
	good := []runFlags{
		{backend: "analytic"},
		{backend: "bitexact", debugAddr: true},
		{backend: "analytic", plan: true, replan: true, trace: true, timeline: true},
		{backend: "analytic", reuse: true, zipfSet: true, cache: true},
		{backend: "analytic", cluster: true},
		{backend: "analytic", cluster: true, routerSet: true, lifecycle: true, rateShift: true},
		{backend: "analytic", cluster: true, plan: true, replan: true, trace: true, timeline: true},
	}
	for _, f := range good {
		if err := validateFlags(f); err != nil {
			t.Errorf("%+v rejected: %v", f, err)
		}
	}
}

func TestParseNodeSpecs(t *testing.T) {
	specs, err := parseNodeSpecs("3")
	if err != nil || len(specs) != 3 || specs[0] != (cluster.NodeSpec{}) {
		t.Fatalf("count form: %v, %v", specs, err)
	}
	specs, err = parseNodeSpecs(" 2x14, 1x14/7 ,2x24/2")
	if err != nil {
		t.Fatal(err)
	}
	want := []cluster.NodeSpec{
		{Sockets: 2, Slices: 14},
		{Sockets: 1, Slices: 14, GroupSize: 7},
		{Sockets: 2, Slices: 24, GroupSize: 2},
	}
	if len(specs) != len(want) {
		t.Fatalf("%d specs, want %d", len(specs), len(want))
	}
	for i, w := range want {
		if specs[i] != w {
			t.Errorf("spec %d = %+v, want %+v", i, specs[i], w)
		}
	}
	for _, bad := range []string{"", "0", "-2", "2x", "x14", "2x14/", "2x14/0", "ax14", "2x14,zzz"} {
		if _, err := parseNodeSpecs(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestParseClusterEvents(t *testing.T) {
	evs, err := parseClusterEvents("400ms:2", "150ms:1", "300ms:1; 1s:2")
	if err != nil {
		t.Fatal(err)
	}
	want := []cluster.NodeEvent{
		{At: 400 * time.Millisecond, Node: 2, Kind: cluster.KillNode},
		{At: 150 * time.Millisecond, Node: 1, Kind: cluster.DrainNode},
		{At: 300 * time.Millisecond, Node: 1, Kind: cluster.JoinNode},
		{At: time.Second, Node: 2, Kind: cluster.JoinNode},
	}
	if len(evs) != len(want) {
		t.Fatalf("%d events, want %d", len(evs), len(want))
	}
	for i, w := range want {
		if evs[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, evs[i], w)
		}
	}
	for _, bad := range []string{"400ms", "oops:1", "400ms:x"} {
		if _, err := parseClusterEvents(bad, "", ""); err == nil {
			t.Errorf("kill %q accepted", bad)
		}
	}
}

func TestParseClusterRateShifts(t *testing.T) {
	shifts, err := parseClusterRateShifts("10s:4000; 20s:800.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []cluster.RateShift{
		{At: 10 * time.Second, Rate: 4000},
		{At: 20 * time.Second, Rate: 800.5},
	}
	if len(shifts) != len(want) {
		t.Fatalf("%d shifts, want %d", len(shifts), len(want))
	}
	for i, w := range want {
		if shifts[i] != w {
			t.Errorf("shift %d = %+v, want %+v", i, shifts[i], w)
		}
	}
	if got, err := parseClusterRateShifts(""); err != nil || got != nil {
		t.Errorf("empty flag: %v, %v", got, err)
	}
	for _, bad := range []string{"10s", "x:100", "10s:fast"} {
		if _, err := parseClusterRateShifts(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
