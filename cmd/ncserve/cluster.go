package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"neuralcache"
	"neuralcache/cluster"
	"neuralcache/obs"
	"neuralcache/serve"
)

// parseNodeSpecs parses the -cluster fleet description: either a bare
// node count ("4" — four stock two-socket nodes) or a comma-separated
// list of SOCKETSxSLICES[/GROUP] geometries ("2x14,1x14,2x14/2").
func parseNodeSpecs(s string) ([]cluster.NodeSpec, error) {
	s = strings.TrimSpace(s)
	if n, err := strconv.Atoi(s); err == nil {
		if n < 1 {
			return nil, fmt.Errorf("-cluster %d: need at least one node", n)
		}
		return make([]cluster.NodeSpec, n), nil
	}
	parts := strings.Split(s, ",")
	specs := make([]cluster.NodeSpec, len(parts))
	for i, p := range parts {
		spec, err := parseNodeSpec(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("-cluster node %d %q: %v", i, strings.TrimSpace(p), err)
		}
		specs[i] = spec
	}
	return specs, nil
}

// parseNodeSpec parses one SOCKETSxSLICES[/GROUP] geometry. Divisibility
// of the group size is left to the cluster's own validation.
func parseNodeSpec(p string) (cluster.NodeSpec, error) {
	var ns cluster.NodeSpec
	geom, group, hasGroup := strings.Cut(p, "/")
	so, sl, ok := strings.Cut(geom, "x")
	if !ok {
		return ns, fmt.Errorf("want SOCKETSxSLICES[/GROUP]")
	}
	var err error
	if ns.Sockets, err = strconv.Atoi(so); err != nil {
		return ns, fmt.Errorf("sockets %q: %v", so, err)
	}
	if ns.Slices, err = strconv.Atoi(sl); err != nil {
		return ns, fmt.Errorf("slices %q: %v", sl, err)
	}
	if hasGroup {
		if ns.GroupSize, err = strconv.Atoi(group); err != nil {
			return ns, fmt.Errorf("group %q: %v", group, err)
		}
	}
	if ns.Sockets < 1 || ns.Slices < 1 || (hasGroup && ns.GroupSize < 1) {
		return ns, fmt.Errorf("want positive SOCKETSxSLICES[/GROUP]")
	}
	return ns, nil
}

// parseClusterEvents merges the three lifecycle schedules into one
// scenario. The simulator fires events in time order; same-instant
// entries fire in list order (kills, then drains, then joins).
func parseClusterEvents(kill, drain, join string) ([]cluster.NodeEvent, error) {
	var out []cluster.NodeEvent
	for _, f := range []struct {
		flag string
		s    string
		kind cluster.EventKind
	}{
		{"-kill-node", kill, cluster.KillNode},
		{"-drain", drain, cluster.DrainNode},
		{"-join", join, cluster.JoinNode},
	} {
		evs, err := parseNodeEvents(f.flag, f.s, f.kind)
		if err != nil {
			return nil, err
		}
		out = append(out, evs...)
	}
	return out, nil
}

// parseNodeEvents parses one lifecycle flag: semicolon-separated t:node
// entries ("400ms:0;1s:2").
func parseNodeEvents(flagName, s string, kind cluster.EventKind) ([]cluster.NodeEvent, error) {
	if s == "" {
		return nil, nil
	}
	var out []cluster.NodeEvent
	for _, entry := range strings.Split(s, ";") {
		at, idx, ok := strings.Cut(strings.TrimSpace(entry), ":")
		if !ok {
			return nil, fmt.Errorf("%s entry %q: want t:node", flagName, entry)
		}
		t, err := time.ParseDuration(strings.TrimSpace(at))
		if err != nil {
			return nil, fmt.Errorf("%s time %q: %v", flagName, at, err)
		}
		n, err := strconv.Atoi(strings.TrimSpace(idx))
		if err != nil {
			return nil, fmt.Errorf("%s node %q: %v", flagName, idx, err)
		}
		out = append(out, cluster.NodeEvent{At: t, Node: n, Kind: kind})
	}
	return out, nil
}

// parseClusterRateShifts parses -rate-shift: semicolon-separated t:rate
// entries ("10s:4000;20s:800") forming the diurnal schedule.
func parseClusterRateShifts(s string) ([]cluster.RateShift, error) {
	if s == "" {
		return nil, nil
	}
	var out []cluster.RateShift
	for _, entry := range strings.Split(s, ";") {
		at, rs, ok := strings.Cut(strings.TrimSpace(entry), ":")
		if !ok {
			return nil, fmt.Errorf("-rate-shift entry %q: want t:rate", entry)
		}
		t, err := time.ParseDuration(strings.TrimSpace(at))
		if err != nil {
			return nil, fmt.Errorf("-rate-shift time %q: %v", at, err)
		}
		r, err := strconv.ParseFloat(strings.TrimSpace(rs), 64)
		if err != nil {
			return nil, fmt.Errorf("-rate-shift rate %q: %v", rs, err)
		}
		out = append(out, cluster.RateShift{At: t, Rate: r})
	}
	return out, nil
}

// fleetCapacity sums the nodes' §VI-B replica-group throughput bounds
// for the default model — the fleet analogue of fillLoad's rate
// default. Zero spec fields default like cluster.NodeSpec.
func fleetCapacity(specs []cluster.NodeSpec, resident []*neuralcache.Model) (float64, error) {
	total := 0.0
	for _, ns := range specs {
		sockets, slices, group, maxBatch := ns.Sockets, ns.Slices, ns.GroupSize, ns.MaxBatch
		if sockets == 0 {
			sockets = 2
		}
		if slices == 0 {
			slices = 14
		}
		if group == 0 {
			group = 1
		}
		if maxBatch == 0 {
			maxBatch = 16
		}
		cfg := neuralcache.DefaultConfig()
		cfg.Sockets, cfg.Slices = sockets, slices
		if group > 1 {
			cfg.GroupSize = group
		}
		sys, err := neuralcache.New(cfg)
		if err != nil {
			return 0, err
		}
		be := serve.NewAnalyticBackend(sys, resident[0], resident[1:]...)
		st, err := be.ServiceTime("", maxBatch, group)
		if err != nil {
			return 0, err
		}
		total += float64(sockets*slices/group*maxBatch) / st.Seconds()
	}
	return total, nil
}

// runCluster simulates the -cluster fleet scenario and prints its
// report as text or JSON, optionally writing the fleet trace.
func runCluster(resident []*neuralcache.Model, copts cluster.Options, load cluster.Load, traceOut *os.File, traceFile string, jsonOut bool) {
	if load.Requests == 0 && load.Duration == 0 {
		load.Requests = 100_000
	}
	if load.Rate == 0 {
		c, err := fleetCapacity(copts.Nodes, resident)
		if err != nil {
			log.Fatal(err)
		}
		// Twice the surviving-fleet bound, like the single-node default:
		// the report shows the routers at the fleet's throughput limit.
		load.Rate = 2 * c
	}
	if traceOut != nil {
		copts.Trace = &obs.Trace{}
	}
	rep, err := cluster.Simulate(resident, copts, load)
	if err != nil {
		log.Fatal(err)
	}
	if traceOut != nil {
		if err := copts.Trace.WriteJSON(traceOut); err != nil {
			log.Fatalf("-trace: %v", err)
		}
		if err := traceOut.Close(); err != nil {
			log.Fatalf("-trace: %v", err)
		}
		if !jsonOut {
			fmt.Printf("trace: %d events -> %s (open in ui.perfetto.dev)\n\n", copts.Trace.Len(), traceFile)
		}
	}
	if jsonOut {
		emitJSON(rep)
		return
	}
	fmt.Println(rep)
}
