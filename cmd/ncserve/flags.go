package main

import (
	"errors"
	"fmt"
)

// runFlags captures the flag state the compatibility matrix inspects —
// plain values, not the flag.FlagSet — so the matrix is testable
// without re-registering flags. The *Set fields distinguish "flag given
// explicitly" from "default value" where the default is meaningful.
type runFlags struct {
	backend     string
	trace       bool // -trace given a path
	timeline    bool // -timeline > 0
	sweepGroups bool
	sweepCache  bool
	plan        bool
	replan      bool // -replan-threshold != 0
	replicas    bool // -replicas != 0
	concurrency bool // -concurrency > 0
	cache       bool // -cache > 0
	reuse       bool // -reuse > 0
	zipfSet     bool // -zipf explicitly given
	debugAddr   bool
	geometrySet bool // -sockets/-slices/-group explicitly given
	cluster     bool // -cluster given
	routerSet   bool // -router explicitly given
	lifecycle   bool // -kill-node/-drain/-join given
	rateShift   bool // -rate-shift given
}

// validateFlags rejects flag combinations that cannot run together, in
// a fixed check order so the same bad invocation always dies the same
// way. Single-flag value errors (negative counts, malformed grammars)
// stay at their parse sites; only cross-flag rules live here.
func validateFlags(f runFlags) error {
	switch f.backend {
	case "analytic", "bitexact":
	default:
		return fmt.Errorf("unknown backend %q", f.backend)
	}
	if f.replan && !f.plan {
		return errors.New("-replan-threshold requires -plan")
	}
	if f.zipfSet && !f.reuse {
		return errors.New("-zipf requires -reuse (a unique-input load has no reuse distribution)")
	}
	if (f.trace || f.timeline) && (f.sweepGroups || f.sweepCache) {
		return errors.New("-trace/-timeline record a single run and cannot be combined with a sweep")
	}
	if f.sweepCache && f.sweepGroups {
		return errors.New("-sweep-cache cannot be combined with -sweep-groups (one axis per sweep)")
	}
	if f.plan && f.sweepGroups {
		return errors.New("-plan cannot be combined with -sweep-groups (the planner co-selects one group size)")
	}
	if f.plan && f.sweepCache {
		return errors.New("-sweep-cache cannot be combined with -plan (sweep one axis at a time)")
	}
	if f.sweepGroups && f.backend != "analytic" {
		return fmt.Errorf("-sweep-groups needs the analytic backend, not %q", f.backend)
	}
	if f.sweepCache && f.backend != "analytic" {
		return fmt.Errorf("-sweep-cache needs the analytic backend, not %q", f.backend)
	}
	if f.sweepGroups && f.replicas {
		return errors.New("-replicas cannot be combined with -sweep-groups (each point uses all groups of its size)")
	}
	if f.debugAddr && f.backend != "bitexact" {
		return fmt.Errorf("-debug-addr needs the wall-clock bitexact backend, not %q (the analytic backend finishes before you could look)", f.backend)
	}
	if !f.cluster {
		if f.routerSet || f.lifecycle || f.rateShift {
			return errors.New("-router, -kill-node, -drain, -join and -rate-shift need -cluster")
		}
		return nil
	}
	// Fleet mode: -cluster replays one scenario on the cluster
	// simulator. Single-node axes with no fleet meaning are rejected
	// rather than silently ignored.
	switch {
	case f.backend != "analytic":
		return fmt.Errorf("-cluster simulates on the analytic backend, not %q", f.backend)
	case f.sweepGroups || f.sweepCache:
		return errors.New("-cluster runs one fleet scenario and cannot be combined with a sweep")
	case f.concurrency:
		return errors.New("-cluster drives an open-loop fleet (-concurrency is the single-node closed loop)")
	case f.cache || f.reuse:
		return errors.New("-cluster nodes serve without a front cache (-cache/-reuse are single-node)")
	case f.replicas:
		return errors.New("-replicas cannot be combined with -cluster (node geometry comes from the -cluster spec)")
	case f.geometrySet:
		return errors.New("-sockets/-slices/-group cannot be combined with -cluster (node geometry comes from the -cluster spec)")
	}
	return nil
}
