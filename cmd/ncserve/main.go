// Command ncserve load-tests the Neural Cache serving subsystem.
//
// The analytic backend (default) replays a generated arrival process
// through the replica-group scheduler on a deterministic virtual clock —
// hundreds of thousands of Inception-scale requests simulate in
// seconds — and prints a latency histogram and per-group utilization
// report. The bitexact backend starts the real asynchronous server and
// drives it with the same load generator in wall-clock time, executing
// every request bit-accurately on the simulated SRAM arrays.
//
// The serving unit is a replica group of -group consecutive LLC slices
// on one socket (default 1, the paper's §VI-B one-image-per-slice
// replication; -group must divide -slices). Bigger groups serve each
// image faster and reload models less often at the cost of replica
// count; -sweep-groups runs the same load at several group sizes and
// prints the Table IV-style latency/throughput/reload frontier (as a
// table, or as a JSON array with -json).
//
// Multiple models can be resident at once (-models): each arrival draws
// its model from the -mix weights, the scheduler dispatches warm-first,
// and cold dispatches pay the §IV-E weight-reload cost. The report
// splits dispatches into warm/cold counts and carries per-model latency
// percentiles.
//
// Traffic is open-loop by default (-rate arrivals per second, exposing
// queueing and rejection); -concurrency N switches to a closed loop of N
// users that each keep one request in flight (-rate then sets the
// per-user think rate; 0 = none), exposing latency under admission
// control.
//
// Usage:
//
//	ncserve -model inception -rate 2000 -requests 100000
//	ncserve -models inception,resnet -mix 0.7,0.3 -requests 100000
//	ncserve -model inception -group 2 -requests 100000
//	ncserve -model inception -sweep-groups 1,2,7,14 -requests 50000 -json
//	ncserve -model inception -concurrency 64 -requests 50000
//	ncserve -backend bitexact -models small,smallresnet -mix 1,1 -requests 16 -rate 500
//	ncserve -model resnet -slices 24 -replicas 12 -duration 2s -rate 1000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"neuralcache"
	"neuralcache/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncserve: ")
	var (
		model       = flag.String("model", "inception", "model: "+strings.Join(neuralcache.ModelNames(), ", "))
		models      = flag.String("models", "", "comma-separated resident models (overrides -model; first is the default)")
		mix         = flag.String("mix", "", "comma-separated traffic weights matching -models (default uniform)")
		backend     = flag.String("backend", "analytic", "backend: analytic (virtual clock) or bitexact (real server)")
		slices      = flag.Int("slices", 14, "LLC slices (14=35MB, 18=45MB, 24=60MB)")
		sockets     = flag.Int("sockets", 2, "host sockets")
		workers     = flag.Int("workers", 0, "functional-engine worker goroutines (bitexact; 0 = GOMAXPROCS)")
		group       = flag.Int("group", 1, "LLC slices per replica group (must divide -slices)")
		sweepGroups = flag.String("sweep-groups", "", "comma-separated group sizes to sweep (analytic only; overrides -group)")
		replicas    = flag.Int("replicas", 0, "replica groups to serve on (0 = slices × sockets / group)")
		maxBatch    = flag.Int("maxbatch", 16, "dynamic micro-batch size cap")
		linger      = flag.Duration("linger", 2*time.Millisecond, "max wait for a fuller batch (0 = dispatch immediately)")
		queue       = flag.Int("queue", 1024, "admission queue depth")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate per second (0 = 2× group capacity); closed-loop per-user think rate (0 = no think)")
		concurrency = flag.Int("concurrency", 0, "closed-loop users keeping one request in flight each (0 = open loop)")
		requests    = flag.Int("requests", 0, "arrivals to generate (0 = 100000 analytic / 64 bitexact)")
		duration    = flag.Duration("duration", 0, "arrival window, alternative to -requests")
		poisson     = flag.Bool("poisson", true, "Poisson (exponential) interarrivals/think times; false = uniform spacing")
		seed        = flag.Int64("seed", 42, "arrival / mix / weight / input seed")
		jsonOut     = flag.Bool("json", false, "emit the load report (or group sweep) as JSON")
	)
	flag.Parse()

	cfg := neuralcache.DefaultConfig()
	cfg.Slices = *slices
	cfg.Sockets = *sockets
	cfg.Workers = *workers
	if *group < 1 {
		log.Fatalf("-group %d: need at least one slice per replica group", *group)
	}
	if *group != 1 {
		// Reflect the grouping in the facade config so the echoed
		// "config" JSON describes the system actually run (1 keeps the
		// historical schema: GroupSize 0 ≡ 1).
		cfg.GroupSize = *group
	}
	sys, err := neuralcache.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{*model}
	if *models != "" {
		names = strings.Split(*models, ",")
	}
	resident := make([]*neuralcache.Model, len(names))
	seen := make(map[string]bool, len(names))
	for i, name := range names {
		m, err := neuralcache.ModelByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		if seen[m.Name()] {
			log.Fatalf("-models lists %s twice", strings.TrimSpace(name))
		}
		seen[m.Name()] = true
		resident[i] = m
		names[i] = m.Name()
	}

	opts := serve.Options{
		QueueDepth: *queue,
		MaxBatch:   *maxBatch,
		MaxLinger:  *linger,
		GroupSize:  *group,
		Replicas:   *replicas,
	}
	if *linger == 0 {
		opts.MaxLinger = serve.NoLinger
	}
	load := serve.Load{
		Rate:        *rate,
		Requests:    *requests,
		Duration:    *duration,
		Seed:        *seed,
		Poisson:     *poisson,
		Concurrency: *concurrency,
		Mix:         parseMix(names, *mix),
	}

	if *sweepGroups != "" {
		if *backend != "analytic" {
			log.Fatalf("-sweep-groups needs the analytic backend, not %q", *backend)
		}
		if *replicas != 0 {
			// SweepGroups schedules on every group of each k; a narrowed
			// replica count would silently describe a different system.
			log.Fatal("-replicas cannot be combined with -sweep-groups (each point uses all groups of its size)")
		}
		be := serve.NewAnalyticBackend(sys, resident[0], resident[1:]...)
		fillLoad(&load, be, opts, 100_000)
		points, err := serve.SweepGroups(be, opts, load, parseGroups(*sweepGroups))
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			// The frontier rows only; drop the per-run reports to keep the
			// sweep JSON a compact, diffable artifact.
			rows := make([]serve.GroupSweepPoint, len(points))
			for i, p := range points {
				rows[i] = p
				rows[i].Report = nil
			}
			emitJSON(struct {
				Config neuralcache.Config      `json:"config"`
				Sweep  []serve.GroupSweepPoint `json:"sweep"`
			}{cfg, rows})
			return
		}
		fmt.Println(serve.SweepTable(points))
		return
	}

	var rep *serve.LoadReport
	switch *backend {
	case "analytic":
		be := serve.NewAnalyticBackend(sys, resident[0], resident[1:]...)
		fillLoad(&load, be, opts, 100_000)
		rep, err = serve.Simulate(be, opts, load)
	case "bitexact":
		for _, m := range resident {
			m.InitWeights(*seed)
		}
		be := serve.NewBitExactBackend(sys, resident[0], resident[1:]...)
		fillLoad(&load, be, opts, 64)
		var srv *serve.Server
		srv, err = serve.NewServer(be, opts)
		if err != nil {
			log.Fatal(err)
		}
		rep, err = serve.LoadTest(srv, load, inputSource(be, *seed))
		if cerr := srv.Close(); err == nil {
			err = cerr
		}
	default:
		log.Fatalf("unknown backend %q", *backend)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		emitJSON(struct {
			Config neuralcache.Config `json:"config"`
			*serve.LoadReport
		}{cfg, rep})
		return
	}
	fmt.Println(rep)
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

// parseGroups parses the -sweep-groups list.
func parseGroups(s string) []int {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		k, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			log.Fatalf("-sweep-groups entry %q: %v", p, err)
		}
		out[i] = k
	}
	return out
}

// parseMix builds the traffic mix for the resident models: -mix weights
// when given (must match -models in count), uniform weights when several
// models are resident, nil (default-model-only) otherwise.
func parseMix(names []string, mixFlag string) []serve.ModelShare {
	if mixFlag == "" {
		if len(names) <= 1 {
			return nil
		}
		out := make([]serve.ModelShare, len(names))
		for i, n := range names {
			out[i] = serve.ModelShare{Model: n, Weight: 1}
		}
		return out
	}
	parts := strings.Split(mixFlag, ",")
	if len(parts) != len(names) {
		log.Fatalf("-mix has %d weights for %d models", len(parts), len(names))
	}
	out := make([]serve.ModelShare, len(names))
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			log.Fatalf("-mix weight %q: %v", p, err)
		}
		out[i] = serve.ModelShare{Model: names[i], Weight: w}
	}
	return out
}

// fillLoad defaults the request count and the open-loop arrival rate:
// with no -rate, offer twice the replica-group capacity of the default
// model so the report shows the scheduler at its §VI-B throughput bound.
// Closed-loop runs keep a zero rate (no think time).
func fillLoad(load *serve.Load, be serve.Backend, opts serve.Options, defaultRequests int) {
	if load.Requests == 0 && load.Duration == 0 {
		load.Requests = defaultRequests
	}
	if load.Rate == 0 && load.Concurrency == 0 {
		maxBatch := opts.MaxBatch
		if maxBatch <= 0 {
			maxBatch = 1
		}
		// -group feeds Config.GroupSize above, so the system's own group
		// accounting applies (Options.GroupSize 0 defaults to it too).
		st, err := be.ServiceTime("", maxBatch, be.System().GroupSize())
		if err != nil {
			log.Fatal(err)
		}
		replicas := opts.Replicas
		if replicas == 0 {
			replicas = be.System().ReplicaGroups()
		}
		load.Rate = 2 * float64(replicas*maxBatch) / st.Seconds()
	}
}

// inputSource yields a deterministic random input tensor per arrival
// ordinal, shaped for the arrival's model and seeded like ncsim's
// functional mode.
func inputSource(be serve.Backend, seed int64) func(i int, model string) *neuralcache.Tensor {
	return func(i int, model string) *neuralcache.Tensor {
		m, err := be.Lookup(model)
		if err != nil {
			log.Fatal(err)
		}
		h, w, c := m.InputShape()
		in := neuralcache.NewTensor(h, w, c, 1.0/255)
		r := rand.New(rand.NewSource(seed + 1 + int64(i)))
		for j := range in.Data {
			in.Data[j] = uint8(r.Intn(256))
		}
		return in
	}
}
