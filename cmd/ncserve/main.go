// Command ncserve load-tests the Neural Cache serving subsystem.
//
// The analytic backend (default) replays a generated arrival process
// through the replica-group scheduler on a deterministic virtual clock —
// hundreds of thousands of Inception-scale requests simulate in
// seconds — and prints a latency histogram and per-group utilization
// report. The bitexact backend starts the real asynchronous server and
// drives it with the same load generator in wall-clock time, executing
// every request bit-accurately on the simulated SRAM arrays.
//
// The serving unit is a replica group of -group consecutive LLC slices
// on one socket (default 1, the paper's §VI-B one-image-per-slice
// replication; -group must divide -slices). Bigger groups serve each
// image faster and reload models less often at the cost of replica
// count; -sweep-groups runs the same load at several group sizes and
// prints the Table IV-style latency/throughput/reload frontier (as a
// table, or as a JSON array with -json).
//
// Multiple models can be resident at once (-models): each arrival draws
// its model from the -mix weights, the scheduler dispatches warm-first,
// and cold dispatches pay the §IV-E weight-reload cost. The report
// splits dispatches into warm/cold counts and carries per-model latency
// percentiles.
//
// Traffic is open-loop by default (-rate arrivals per second, exposing
// queueing and rejection); -concurrency N switches to a closed loop of N
// users that each keep one request in flight (-rate then sets the
// per-user think rate; 0 = none), exposing latency under admission
// control.
//
// Observability: -trace out.json records the full request lifecycle —
// queue spans, warm/cold batch spans (cold ones with reload sub-spans),
// restage spans, rejection and re-plan instants, one lane per replica
// group — as Chrome trace-event JSON, viewable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. On the analytic backend the
// trace rides the virtual clock and is byte-identical across runs and
// worker counts; on bitexact it records real wall-clock offsets. The
// output file is created up front so an unwritable path fails before
// the run, not after it. -timeline 500ms samples queue depth, per-group
// utilization, warm/cold dispatch counts, offered/served rates and mix
// drift every interval into the report's "timeline" array. With
// -backend bitexact, -debug-addr host:port serves net/http/pprof and
// expvar (live queue depth, busy groups, counters, observed mix) while
// the load runs.
//
// -cache N puts a memoizing front-cache of N entries ahead of the
// admission queue: repeated inputs are served at admission without
// touching a replica group. -reuse U -zipf s makes the generated load
// reusable — each arrival draws its input identity from a Zipf(s)
// distribution over U distinct inputs — so the cache has something to
// hit. -cache-policy lsh adds SimHash similarity buckets
// (-cache-tables × -cache-bits random hyperplanes) in front of the
// exact-match check; an exact byte comparison still guards every hit,
// so a cached response is never wrong. -sweep-cache 0,256,1024 runs
// the same reusable load at several capacities and prints the
// break-even frontier — which hit rate turns the cache into free
// replica capacity.
//
// -plan turns on the mix-aware residency planner: warm sets are sized
// from the -mix weights and pre-staged across the replica groups, and
// the group size is co-selected over the divisors of -slices (an
// explicit -group pins it instead). Pinned groups only ever serve their
// model, so steady traffic dispatches warm. -replan-threshold x attaches
// the online drift controller, and -mix-shift shifts the traffic mix
// mid-run (t:w1,w2,... — weights match -models; repeat with
// semicolons), the scenario the controller chases by restaging groups.
// The plan (assignment table, predictions, predicted vs observed cold
// dispatches) is printed with the report in text and embedded in -json
// output.
//
// -cluster lifts the run from one node to a fleet: it simulates N
// Neural Cache nodes (a bare count for stock nodes, or comma-separated
// SOCKETSxSLICES[/GROUP] geometries for a heterogeneous fleet) behind
// one front door on the same deterministic virtual clock. -router picks
// the routing policy — least-loaded, affinity (rendezvous-hash models
// to home nodes, so steady traffic dispatches warm) or p2c
// (power-of-two-choices). The scenario plays lifecycle events from
// -kill-node, -drain and -join (semicolon-separated t:node entries) and
// a diurnal -rate-shift schedule (t:rate); -plan/-replan-threshold give
// every node a mix-aware warm set and its own drift controller, and
// -trace/-timeline record the fleet with one process lane per node. The
// report aggregates fleet percentiles, per-node utilization and
// warm/cold/reload counts, and rejects by cause (queue-full vs
// no-accepting-node).
//
// Usage:
//
//	ncserve -model inception -rate 2000 -requests 100000
//	ncserve -models inception,resnet -mix 0.7,0.3 -requests 100000
//	ncserve -model inception -group 2 -requests 100000
//	ncserve -model inception -sweep-groups 1,2,7,14 -requests 50000 -json
//	ncserve -model inception -concurrency 64 -requests 50000
//	ncserve -models inception,resnet -mix 0.8,0.2 -rate 600 -plan -json
//	ncserve -models inception,resnet -mix 0.8,0.2 -rate 600 -group 7 -plan \
//	        -replan-threshold 0.15 -mix-shift 15s:0.2,0.8 -requests 30000
//	ncserve -backend bitexact -models small,smallresnet -mix 1,1 -requests 16 -rate 500
//	ncserve -model resnet -slices 24 -replicas 12 -duration 2s -rate 1000
//	ncserve -models inception,resnet -mix 0.8,0.2 -rate 600 -group 7 -plan \
//	        -replan-threshold 0.15 -mix-shift 15s:0.2,0.8 -trace trace.json -timeline 500ms
//	ncserve -backend bitexact -model small -requests 32 -debug-addr localhost:6060
//	ncserve -model inception -rate 4000 -reuse 4096 -zipf 1.1 -cache 1024
//	ncserve -model inception -rate 4000 -reuse 4096 -zipf 1.1 -sweep-cache 0,256,1024,4096
//	ncserve -backend bitexact -model small -requests 64 -reuse 16 -zipf 1.2 -cache 8 -cache-policy lsh
//	ncserve -cluster 4 -models inception,resnet -mix 0.7,0.3 -router affinity -requests 50000
//	ncserve -cluster 2x14,2x14,1x14/7 -rate 2000 -kill-node 400ms:2 -join 1s:2 -json
//	ncserve -cluster 3 -models inception,resnet -plan -replan-threshold 0.2 \
//	        -mix-shift 5s:0.2,0.8 -rate-shift 10s:800 -drain 2s:0 -join 4s:0
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"neuralcache"
	"neuralcache/cluster"
	"neuralcache/plan"
	"neuralcache/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncserve: ")
	var (
		model       = flag.String("model", "inception", "model: "+strings.Join(neuralcache.ModelNames(), ", "))
		models      = flag.String("models", "", "comma-separated resident models (overrides -model; first is the default)")
		mix         = flag.String("mix", "", "comma-separated traffic weights matching -models (default uniform)")
		backend     = flag.String("backend", "analytic", "backend: analytic (virtual clock) or bitexact (real server)")
		slices      = flag.Int("slices", 14, "LLC slices (14=35MB, 18=45MB, 24=60MB)")
		sockets     = flag.Int("sockets", 2, "host sockets")
		workers     = flag.Int("workers", 0, "functional-engine worker goroutines (bitexact; 0 = GOMAXPROCS)")
		group       = flag.Int("group", 1, "LLC slices per replica group (must divide -slices)")
		sweepGroups = flag.String("sweep-groups", "", "comma-separated group sizes to sweep (analytic only; overrides -group)")
		replicas    = flag.Int("replicas", 0, "replica groups to serve on (0 = slices × sockets / group)")
		maxBatch    = flag.Int("maxbatch", 16, "dynamic micro-batch size cap")
		linger      = flag.Duration("linger", 2*time.Millisecond, "max wait for a fuller batch (0 = dispatch immediately)")
		queue       = flag.Int("queue", 1024, "admission queue depth")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate per second (0 = 2× group capacity); closed-loop per-user think rate (0 = no think)")
		concurrency = flag.Int("concurrency", 0, "closed-loop users keeping one request in flight each (0 = open loop)")
		requests    = flag.Int("requests", 0, "arrivals to generate (0 = 100000 analytic / 64 bitexact)")
		duration    = flag.Duration("duration", 0, "arrival window, alternative to -requests")
		poisson     = flag.Bool("poisson", true, "Poisson (exponential) interarrivals/think times; false = uniform spacing")
		seed        = flag.Int64("seed", 42, "arrival / mix / weight / input seed")
		jsonOut     = flag.Bool("json", false, "emit the load report (or group sweep) as JSON")
		planFlag    = flag.Bool("plan", false, "pre-stage warm sets from the mix (co-selects the group size unless -group is given)")
		replanThr   = flag.Float64("replan-threshold", 0, "mix drift (total variation, 0-1) that triggers an online re-plan; 0 = no controller (needs -plan)")
		mixShift    = flag.String("mix-shift", "", "mid-run mix shifts, t:w1,w2,... with weights matching -models; semicolon-separated")
		traceFile   = flag.String("trace", "", "write the run's Chrome trace-event JSON here (open in ui.perfetto.dev)")
		timeline    = flag.Duration("timeline", 0, "sample the run's time series every interval into the report's timeline (0 = off)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and expvar debug vars on host:port during the run (bitexact only)")
		cacheCap    = flag.Int("cache", 0, "memoizing front-cache capacity in entries (0 = no cache)")
		cachePolicy = flag.String("cache-policy", "exact", "front-cache match policy: exact or lsh (SimHash similarity buckets)")
		cacheTables = flag.Int("cache-tables", 0, "LSH hash tables (0 = default 4; needs -cache-policy lsh)")
		cacheBits   = flag.Int("cache-bits", 0, "LSH hyperplanes (signature bits) per table (0 = default 16)")
		sweepCache  = flag.String("sweep-cache", "", "comma-separated front-cache capacities to sweep (analytic only; overrides -cache)")
		reuse       = flag.Int("reuse", 0, "reusable-input universe size: arrivals draw from this many distinct inputs (0 = every arrival unique)")
		zipf        = flag.Float64("zipf", 1.1, "Zipf skew of the reuse distribution (must exceed 1; needs -reuse)")
		clusterSpec = flag.String("cluster", "", "simulate a fleet: node count or comma-separated SOCKETSxSLICES[/GROUP] geometries (analytic only)")
		routerName  = flag.String("router", "least-loaded", "cluster routing policy: least-loaded, affinity or p2c (needs -cluster)")
		killNodes   = flag.String("kill-node", "", "cluster kill schedule, semicolon-separated t:node (needs -cluster)")
		drainNodes  = flag.String("drain", "", "cluster drain schedule, semicolon-separated t:node (needs -cluster)")
		joinNodes   = flag.String("join", "", "cluster join schedule, semicolon-separated t:node (needs -cluster)")
		rateShifts  = flag.String("rate-shift", "", "mid-run arrival-rate shifts, semicolon-separated t:rate (needs -cluster)")
	)
	flag.Parse()
	groupSet, zipfSet, socketsSet, slicesSet, routerSet := false, false, false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "group":
			groupSet = true
		case "zipf":
			zipfSet = true
		case "sockets":
			socketsSet = true
		case "slices":
			slicesSet = true
		case "router":
			routerSet = true
		}
	})
	if err := validateFlags(runFlags{
		backend:     *backend,
		trace:       *traceFile != "",
		timeline:    *timeline > 0,
		sweepGroups: *sweepGroups != "",
		sweepCache:  *sweepCache != "",
		plan:        *planFlag,
		replan:      *replanThr != 0,
		replicas:    *replicas != 0,
		concurrency: *concurrency != 0,
		cache:       *cacheCap > 0,
		reuse:       *reuse > 0,
		zipfSet:     zipfSet,
		debugAddr:   *debugAddr != "",
		geometrySet: socketsSet || slicesSet || groupSet,
		cluster:     *clusterSpec != "",
		routerSet:   routerSet,
		lifecycle:   *killNodes != "" || *drainNodes != "" || *joinNodes != "",
		rateShift:   *rateShifts != "",
	}); err != nil {
		log.Fatal(err)
	}

	cfg := neuralcache.DefaultConfig()
	cfg.Slices = *slices
	cfg.Sockets = *sockets
	cfg.Workers = *workers
	if *group < 1 {
		log.Fatalf("-group %d: need at least one slice per replica group", *group)
	}
	if *group != 1 {
		// Reflect the grouping in the facade config so the echoed
		// "config" JSON describes the system actually run (1 keeps the
		// historical schema: GroupSize 0 ≡ 1).
		cfg.GroupSize = *group
	}
	sys, err := neuralcache.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{*model}
	if *models != "" {
		names = strings.Split(*models, ",")
	}
	resident := make([]*neuralcache.Model, len(names))
	seen := make(map[string]bool, len(names))
	for i, name := range names {
		m, err := neuralcache.ModelByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		if seen[m.Name()] {
			log.Fatalf("-models lists %s twice", strings.TrimSpace(name))
		}
		seen[m.Name()] = true
		resident[i] = m
		names[i] = m.Name()
	}

	// Cache and reuse flags fail fast here, mirroring the library's own
	// Load/Options validation, so a typo dies before the model weights
	// are initialized rather than inside the run.
	if *cacheCap < 0 {
		log.Fatalf("-cache %d: capacity must be non-negative", *cacheCap)
	}
	policy, err := serve.ParseCachePolicy(*cachePolicy)
	if err != nil {
		log.Fatalf("-cache-policy: %v", err)
	}
	if *cacheTables < 0 || *cacheBits < 0 {
		log.Fatalf("-cache-tables %d / -cache-bits %d: must be non-negative", *cacheTables, *cacheBits)
	}
	if *reuse < 0 {
		log.Fatalf("-reuse %d: universe must be non-negative", *reuse)
	}
	if *reuse > 0 && (math.IsNaN(*zipf) || math.IsInf(*zipf, 0) || *zipf <= 1) {
		log.Fatalf("-zipf %v: Zipf skew must be a finite value exceeding 1", *zipf)
	}

	opts := serve.Options{
		QueueDepth: *queue,
		MaxBatch:   *maxBatch,
		MaxLinger:  *linger,
		GroupSize:  *group,
		Replicas:   *replicas,
		Cache: serve.CacheOptions{
			Capacity: *cacheCap,
			Policy:   policy,
			Tables:   *cacheTables,
			Bits:     *cacheBits,
		},
	}
	if *linger == 0 {
		opts.MaxLinger = serve.NoLinger
	}
	load := serve.Load{
		Rate:        *rate,
		Requests:    *requests,
		Duration:    *duration,
		Seed:        *seed,
		Poisson:     *poisson,
		Concurrency: *concurrency,
		Mix:         parseMix(names, *mix),
		MixSchedule: parseMixShifts(names, *mixShift),
	}
	if *reuse > 0 {
		load.Reuse = serve.Reuse{ZipfS: *zipf, Universe: *reuse}
	}
	// Observability setup fails fast, before the (possibly minutes-long)
	// load run: the trace file is created now so an unwritable path
	// errors immediately, and the debug listener binds now so a taken
	// port does too.
	if *timeline < 0 {
		log.Fatalf("-timeline %v: interval must be positive", *timeline)
	}
	var traceOut *os.File
	if *traceFile != "" {
		traceOut, err = os.Create(*traceFile)
		if err != nil {
			log.Fatalf("-trace: %v", err)
		}
		if *clusterSpec == "" {
			opts.Trace = serve.NewTracer()
		}
	}
	opts.TimelineInterval = *timeline
	var debugLn net.Listener
	if *debugAddr != "" {
		debugLn, err = net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("-debug-addr: %v", err)
		}
	}

	if *clusterSpec != "" {
		specs, err := parseNodeSpecs(*clusterSpec)
		if err != nil {
			log.Fatal(err)
		}
		for i := range specs {
			specs[i].QueueDepth = *queue
			specs[i].MaxBatch = *maxBatch
			specs[i].MaxLinger = *linger
			if *linger == 0 {
				specs[i].MaxLinger = -1
			}
			specs[i].Workers = *workers
			specs[i].Plan = *planFlag
			if *replanThr != 0 {
				specs[i].Replan = plan.ControllerConfig{Threshold: *replanThr}
			}
		}
		router, err := cluster.ParseRouter(*routerName, *seed)
		if err != nil {
			log.Fatalf("-router: %v", err)
		}
		events, err := parseClusterEvents(*killNodes, *drainNodes, *joinNodes)
		if err != nil {
			log.Fatal(err)
		}
		shifts, err := parseClusterRateShifts(*rateShifts)
		if err != nil {
			log.Fatal(err)
		}
		runCluster(resident, cluster.Options{
			Nodes:            specs,
			Router:           router,
			Events:           events,
			TimelineInterval: *timeline,
		}, cluster.Load{
			Rate:         *rate,
			Requests:     *requests,
			Duration:     *duration,
			Seed:         *seed,
			Poisson:      *poisson,
			Mix:          parseMix(names, *mix),
			MixSchedule:  parseMixShifts(names, *mixShift),
			RateSchedule: shifts,
		}, traceOut, *traceFile, *jsonOut)
		return
	}

	if *sweepGroups != "" {
		be := serve.NewAnalyticBackend(sys, resident[0], resident[1:]...)
		fillLoad(&load, be, opts, 100_000)
		points, err := serve.SweepGroups(be, opts, load, parseGroups(*sweepGroups))
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			// The frontier rows only; drop the per-run reports to keep the
			// sweep JSON a compact, diffable artifact.
			rows := make([]serve.GroupSweepPoint, len(points))
			for i, p := range points {
				rows[i] = p
				rows[i].Report = nil
			}
			emitJSON(struct {
				Config neuralcache.Config      `json:"config"`
				Sweep  []serve.GroupSweepPoint `json:"sweep"`
			}{cfg, rows})
			return
		}
		fmt.Println(serve.SweepTable(points))
		return
	}

	if *sweepCache != "" {
		be := serve.NewAnalyticBackend(sys, resident[0], resident[1:]...)
		fillLoad(&load, be, opts, 100_000)
		points, err := serve.SweepCache(be, opts, load, parseCaps(*sweepCache))
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			// The frontier rows only; drop the per-run reports to keep the
			// sweep JSON a compact, diffable artifact.
			rows := make([]serve.CacheSweepPoint, len(points))
			for i, p := range points {
				rows[i] = p
				rows[i].Report = nil
			}
			emitJSON(struct {
				Config neuralcache.Config      `json:"config"`
				Sweep  []serve.CacheSweepPoint `json:"sweep"`
			}{cfg, rows})
			return
		}
		fmt.Println(serve.SweepCacheTable(points))
		return
	}

	applyPlan := func() {
		if !*planFlag {
			return
		}
		p := computePlan(sys, resident, load, opts, groupSet, *group)
		opts.Plan = p
		opts.GroupSize = p.GroupSize
		if *replanThr != 0 {
			opts.Replan = plan.ControllerConfig{Threshold: *replanThr}
		}
		if !*jsonOut {
			fmt.Println(p)
			fmt.Println()
		}
	}

	var rep *serve.LoadReport
	switch *backend {
	case "analytic":
		be := serve.NewAnalyticBackend(sys, resident[0], resident[1:]...)
		fillLoad(&load, be, opts, 100_000)
		applyPlan()
		rep, err = serve.Simulate(be, opts, load)
	case "bitexact":
		for _, m := range resident {
			m.InitWeights(*seed)
		}
		be := serve.NewBitExactBackend(sys, resident[0], resident[1:]...)
		fillLoad(&load, be, opts, 64)
		applyPlan()
		var srv *serve.Server
		srv, err = serve.NewServer(be, opts)
		if err != nil {
			log.Fatal(err)
		}
		if debugLn != nil {
			publishDebugVars(srv)
			go http.Serve(debugLn, nil)
			if !*jsonOut {
				fmt.Printf("debug: pprof and expvar at http://%s/debug/pprof/ and /debug/vars\n", debugLn.Addr())
			}
		}
		rep, err = serve.LoadTest(srv, load, inputSource(be, *seed))
		if cerr := srv.Close(); err == nil {
			err = cerr
		}
	default:
		log.Fatalf("unknown backend %q", *backend)
	}
	if err != nil {
		log.Fatal(err)
	}

	if traceOut != nil {
		if err := opts.Trace.WriteJSON(traceOut); err != nil {
			log.Fatalf("-trace: %v", err)
		}
		if err := traceOut.Close(); err != nil {
			log.Fatalf("-trace: %v", err)
		}
		if !*jsonOut {
			fmt.Printf("trace: %d events -> %s (open in ui.perfetto.dev)\n\n", opts.Trace.Len(), *traceFile)
		}
	}

	if *jsonOut {
		emitJSON(struct {
			Config neuralcache.Config `json:"config"`
			*serve.LoadReport
		}{cfg, rep})
		return
	}
	fmt.Println(rep)
}

// publishDebugVars registers the server's live counters with expvar, so
// -debug-addr's /debug/vars shows queue depth, group occupancy, serve
// counters and — on controlled runs — the observed mix and its drift,
// alongside the standard memstats and cmdline vars.
func publishDebugVars(srv *serve.Server) {
	expvar.Publish("ncserve_queue_depth", expvar.Func(func() any { return srv.QueueDepth() }))
	expvar.Publish("ncserve_busy_groups", expvar.Func(func() any { return srv.BusyGroups() }))
	expvar.Publish("ncserve_stats", expvar.Func(func() any {
		st := srv.Stats()
		out := map[string]any{
			"submitted":    st.Submitted,
			"rejected":     st.Rejected,
			"served":       st.Served,
			"failed":       st.Failed,
			"canceled":     st.Canceled,
			"batches":      st.Batches,
			"warm_batches": st.WarmBatches,
			"cold_batches": st.ColdBatches,
			"restages":     st.Restages,
			"replans":      st.Replans,
			"utilization":  st.Utilization,
		}
		if st.CacheHits+st.CacheMisses > 0 {
			out["cache_hits"] = st.CacheHits
			out["cache_misses"] = st.CacheMisses
			out["cache_inserts"] = st.CacheInserts
			out["cache_evictions"] = st.CacheEvictions
		}
		if ctrl := srv.Controller(); ctrl != nil {
			out["mix_drift"] = ctrl.Drift()
			out["observed_mix"] = ctrl.Observed()
		}
		return out
	}))
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

// parseGroups parses the -sweep-groups list.
func parseGroups(s string) []int {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		k, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			log.Fatalf("-sweep-groups entry %q: %v", p, err)
		}
		out[i] = k
	}
	return out
}

// parseCaps parses the -sweep-cache capacity list.
func parseCaps(s string) []int {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		c, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			log.Fatalf("-sweep-cache entry %q: %v", p, err)
		}
		out[i] = c
	}
	return out
}

// computePlan builds the residency plan for the run: Compute at an
// explicitly given -group, CoSelect over the slice count's divisors
// otherwise. The queueing predictions assume the open-loop arrival
// rate; closed-loop runs plan latency-only (the offered rate emerges
// from the population).
func computePlan(sys *neuralcache.System, resident []*neuralcache.Model, load serve.Load, opts serve.Options, groupSet bool, group int) *plan.Plan {
	shares := make([]plan.Share, len(load.Mix))
	for i, ms := range load.Mix {
		shares[i] = plan.Share{Model: ms.Model, Weight: ms.Weight}
	}
	po := plan.Options{MaxBatch: opts.MaxBatch}
	if load.Concurrency == 0 {
		po.RatePerSec = load.Rate
	}
	var p *plan.Plan
	var err error
	if groupSet {
		po.GroupSize = group
		p, err = plan.Compute(sys, resident, shares, po)
	} else {
		p, err = plan.CoSelect(sys, resident, shares, po)
	}
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// parseMixShifts parses the -mix-shift schedule: semicolon-separated
// t:w1,w2,... entries whose weights match -models.
func parseMixShifts(names []string, s string) []serve.MixShift {
	if s == "" {
		return nil
	}
	var out []serve.MixShift
	for _, entry := range strings.Split(s, ";") {
		at, weights, ok := strings.Cut(strings.TrimSpace(entry), ":")
		if !ok {
			log.Fatalf("-mix-shift entry %q: want t:w1,w2,...", entry)
		}
		t, err := time.ParseDuration(strings.TrimSpace(at))
		if err != nil {
			log.Fatalf("-mix-shift time %q: %v", at, err)
		}
		out = append(out, serve.MixShift{At: t, Mix: parseMix(names, weights)})
	}
	return out
}

// parseMix builds the traffic mix for the resident models: -mix weights
// when given (must match -models in count), uniform weights when several
// models are resident, nil (default-model-only) otherwise.
func parseMix(names []string, mixFlag string) []serve.ModelShare {
	if mixFlag == "" {
		if len(names) <= 1 {
			return nil
		}
		out := make([]serve.ModelShare, len(names))
		for i, n := range names {
			out[i] = serve.ModelShare{Model: n, Weight: 1}
		}
		return out
	}
	parts := strings.Split(mixFlag, ",")
	if len(parts) != len(names) {
		log.Fatalf("-mix has %d weights for %d models", len(parts), len(names))
	}
	out := make([]serve.ModelShare, len(names))
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			log.Fatalf("-mix weight %q: %v", p, err)
		}
		out[i] = serve.ModelShare{Model: names[i], Weight: w}
	}
	return out
}

// fillLoad defaults the request count and the open-loop arrival rate:
// with no -rate, offer twice the replica-group capacity of the default
// model so the report shows the scheduler at its §VI-B throughput bound.
// Closed-loop runs keep a zero rate (no think time).
func fillLoad(load *serve.Load, be serve.Backend, opts serve.Options, defaultRequests int) {
	if load.Requests == 0 && load.Duration == 0 {
		load.Requests = defaultRequests
	}
	if load.Rate == 0 && load.Concurrency == 0 {
		maxBatch := opts.MaxBatch
		if maxBatch <= 0 {
			maxBatch = 1
		}
		// -group feeds Config.GroupSize above, so the system's own group
		// accounting applies (Options.GroupSize 0 defaults to it too).
		st, err := be.ServiceTime("", maxBatch, be.System().GroupSize())
		if err != nil {
			log.Fatal(err)
		}
		replicas := opts.Replicas
		if replicas == 0 {
			replicas = be.System().ReplicaGroups()
		}
		load.Rate = 2 * float64(replicas*maxBatch) / st.Seconds()
	}
}

// inputSource yields a deterministic random input tensor per arrival
// ordinal, shaped for the arrival's model and seeded like ncsim's
// functional mode.
func inputSource(be serve.Backend, seed int64) func(i int, model string) *neuralcache.Tensor {
	return func(i int, model string) *neuralcache.Tensor {
		m, err := be.Lookup(model)
		if err != nil {
			log.Fatal(err)
		}
		h, w, c := m.InputShape()
		in := neuralcache.NewTensor(h, w, c, 1.0/255)
		r := rand.New(rand.NewSource(seed + 1 + int64(i)))
		for j := range in.Data {
			in.Data[j] = uint8(r.Intn(256))
		}
		return in
	}
}
