// Command nctables regenerates every table and figure of the Neural Cache
// paper's evaluation from the simulator and prints them alongside the
// paper's published values.
//
// Usage:
//
//	nctables -all
//	nctables -table1 -fig14
//	nctables -all -csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"neuralcache/internal/experiments"
	"neuralcache/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nctables: ")
	var (
		all       = flag.Bool("all", false, "print every table and figure")
		table1    = flag.Bool("table1", false, "Table I: Inception v3 layer parameters")
		table2    = flag.Bool("table2", false, "Table II: baseline configuration")
		table3    = flag.Bool("table3", false, "Table III: energy and power")
		table4    = flag.Bool("table4", false, "Table IV: cache-capacity scaling")
		fig12     = flag.Bool("fig12", false, "Figure 12: array area model")
		fig13     = flag.Bool("fig13", false, "Figure 13: per-layer latency")
		fig14     = flag.Bool("fig14", false, "Figure 14: latency breakdown")
		fig15     = flag.Bool("fig15", false, "Figure 15: total latency")
		fig16     = flag.Bool("fig16", false, "Figure 16: throughput vs batch")
		micro     = flag.Bool("micro", false, "§III arithmetic micro-results")
		caseStudy = flag.Bool("casestudy", false, "§VI-A Conv2D_2b case study")
		ablations = flag.Bool("ablations", false, "design-choice ablations (DESIGN.md §5)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	s, err := experiments.NewSuite()
	if err != nil {
		log.Fatal(err)
	}
	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	printed := false
	run := func(enabled bool, gen func() (*report.Table, error)) {
		if !*all && !enabled {
			return
		}
		t, err := gen()
		if err != nil {
			log.Fatal(err)
		}
		emit(t)
		printed = true
	}

	run(*table1, func() (*report.Table, error) { return s.TableI(), nil })
	run(*table2, func() (*report.Table, error) { return s.TableII(), nil })
	run(*table3, func() (*report.Table, error) { t, _, err := s.TableIII(); return t, err })
	run(*table4, func() (*report.Table, error) { t, _, err := s.TableIV(); return t, err })
	run(*fig12, func() (*report.Table, error) { return s.Figure12(), nil })
	run(*fig13, func() (*report.Table, error) { return s.Figure13() })
	run(*fig14, func() (*report.Table, error) { t, _, err := s.Figure14(); return t, err })
	run(*fig15, func() (*report.Table, error) { t, _, err := s.Figure15(); return t, err })
	run(*fig16, func() (*report.Table, error) { t, _, err := s.Figure16(); return t, err })
	run(*micro, func() (*report.Table, error) { return s.Micro(), nil })
	run(*caseStudy, func() (*report.Table, error) { return s.CaseStudy() })
	run(*ablations, func() (*report.Table, error) { return s.Ablations() })

	if !printed {
		fmt.Fprintln(os.Stderr, "nothing selected; try -all")
		flag.Usage()
		os.Exit(2)
	}
}
