// Command ncsim runs a model through the Neural Cache engine.
//
// Analytic mode (default) prices an inference batch on the modeled cache
// and prints the latency breakdown, per-layer timings, energy and
// throughput. Functional mode executes a small model bit-accurately on
// simulated SRAM arrays and prints the classification result and the
// emergent microcode cycle counts. -json replaces the prose with one
// machine-readable JSON document on stdout, for bench-trajectory tooling
// that scrapes runs.
//
// Usage:
//
//	ncsim -model inception -batch 16
//	ncsim -model small -mode functional -seed 7
//	ncsim -model inception -slices 24 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"neuralcache"
	"neuralcache/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncsim: ")
	var (
		model    = flag.String("model", "inception", "model: "+strings.Join(neuralcache.ModelNames(), ", "))
		batch    = flag.Int("batch", 1, "batch size (analytic mode)")
		slices   = flag.Int("slices", 14, "LLC slices (14=35MB, 18=45MB, 24=60MB)")
		sockets  = flag.Int("sockets", 2, "host sockets (throughput scaling)")
		mode     = flag.String("mode", "analytic", "mode: analytic or functional")
		seed     = flag.Int64("seed", 42, "weight/input seed (functional mode)")
		workers  = flag.Int("workers", 0, "functional-engine worker goroutines (0 = GOMAXPROCS)")
		skipZero = flag.Bool("skipzero", false, "skip all-zero multiplier bit-slices (functional mode; outputs unchanged, cycles data-dependent)")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	)
	flag.Parse()

	cfg := neuralcache.DefaultConfig()
	cfg.Slices = *slices
	cfg.Sockets = *sockets
	cfg.Workers = *workers
	cfg.SkipZeroSlices = *skipZero
	sys, err := neuralcache.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	m, err := neuralcache.ModelByName(*model)
	if err != nil {
		log.Fatal(err)
	}

	switch *mode {
	case "analytic":
		runAnalytic(sys, cfg, m, *batch, *jsonOut)
	case "functional":
		runFunctional(sys, cfg, m, *seed, *jsonOut)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

func runAnalytic(sys *neuralcache.System, cfg neuralcache.Config, m *neuralcache.Model, batch int, jsonOut bool) {
	est, err := sys.Estimate(m, batch)
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		emitJSON(struct {
			Config   neuralcache.Config    `json:"config"`
			Mode     string                `json:"mode"`
			Estimate *neuralcache.Estimate `json:"estimate"`
		}{cfg, "analytic", est})
		return
	}
	fmt.Printf("model %s on %d-slice cache (%d lanes), batch %d\n\n",
		est.Model, sys.Config().Slices, sys.Lanes(), est.BatchSize)

	t := report.NewTable("Latency breakdown", "Phase", "ms", "Share")
	for _, p := range est.Phases {
		t.Add(p.Phase, report.MS(p.Seconds), report.Pct(p.Seconds/est.LatencySeconds))
	}
	fmt.Println(t.String())

	lt := report.NewTable("Per-layer latency", "Layer", "ms", "Serial iters", "Utilization")
	for _, l := range est.Layers {
		lt.Add(l.Name, report.MS(l.Seconds), fmt.Sprint(l.SerialIters), report.Pct(l.Utilization))
	}
	fmt.Println(lt.String())

	fmt.Printf("latency:    %s ms (batch)\n", report.MS(est.LatencySeconds))
	fmt.Printf("throughput: %.1f inferences/s (%d sockets)\n", est.ThroughputPerSec, sys.Config().Sockets)
	fmt.Printf("energy:     %.3f J (package; DRAM %.3f J tracked separately)\n", est.EnergyJ, est.DRAMEnergyJ)
	fmt.Printf("power:      %.1f W average\n", est.AvgPowerW)
}

// functionalRun is the machine-readable summary of a bit-accurate run.
type functionalRun struct {
	Config          neuralcache.Config `json:"config"`
	Mode            string             `json:"mode"`
	Model           string             `json:"model"`
	Seed            int64              `json:"seed"`
	OutputH         int                `json:"output_h"`
	OutputW         int                `json:"output_w"`
	OutputC         int                `json:"output_c"`
	OutputScale     float64            `json:"output_scale"`
	Logits          []int32            `json:"logits,omitempty"`
	Class           int                `json:"class"`
	ArraysUsed      int                `json:"arrays_used"`
	ComputeCycles   uint64             `json:"compute_cycles"`
	AccessCycles    uint64             `json:"access_cycles"`
	FabricBusCycles uint64             `json:"fabric_bus_cycles"`
	// Zero-slice skipping accounting, present only under -skipzero.
	SkipZeroSlices  bool        `json:"skip_zero_slices,omitempty"`
	SkippedSlices   uint64      `json:"skipped_slices,omitempty"`
	TotalSlices     uint64      `json:"total_slices,omitempty"`
	SkipCyclesSaved uint64      `json:"skip_cycles_saved,omitempty"`
	SliceDensity    float64     `json:"slice_density,omitempty"`
	LayerSkips      []layerSkip `json:"layer_skips,omitempty"`
}

type layerSkip struct {
	Layer           string `json:"layer"`
	SkippedSlices   uint64 `json:"skipped_slices"`
	TotalSlices     uint64 `json:"total_slices"`
	SkipCyclesSaved uint64 `json:"skip_cycles_saved"`
}

func runFunctional(sys *neuralcache.System, cfg neuralcache.Config, m *neuralcache.Model, seed int64, jsonOut bool) {
	m.InitWeights(seed)
	h, w, c := m.InputShape()
	in := neuralcache.NewTensor(h, w, c, 1.0/255)
	r := rand.New(rand.NewSource(seed + 1))
	for i := range in.Data {
		in.Data[i] = uint8(r.Intn(256))
	}
	res, err := sys.Run(m, in)
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		run := functionalRun{
			Config: cfg, Mode: "functional", Model: m.Name(), Seed: seed,
			OutputH: res.Output.H, OutputW: res.Output.W, OutputC: res.Output.C,
			OutputScale: res.Output.Scale, Logits: res.Logits, Class: res.Argmax(),
			ArraysUsed: res.ArraysUsed, ComputeCycles: res.ComputeCycles,
			AccessCycles: res.AccessCycles, FabricBusCycles: res.FabricBusCycles,
		}
		if res.SkipZeroSlices {
			run.SkipZeroSlices = true
			run.SkippedSlices = res.SkippedSlices
			run.TotalSlices = res.TotalSlices
			run.SkipCyclesSaved = res.SkipCyclesSaved
			run.SliceDensity = res.SliceDensity()
			for _, l := range res.LayerSkips {
				run.LayerSkips = append(run.LayerSkips, layerSkip{
					Layer: l.Layer, SkippedSlices: l.SkippedSlices,
					TotalSlices: l.TotalSlices, SkipCyclesSaved: l.SkipCyclesSaved,
				})
			}
		}
		emitJSON(run)
		return
	}
	fmt.Printf("model %s: bit-accurate in-cache inference complete\n", m.Name())
	fmt.Printf("  output shape: %dx%dx%d (scale %.6f)\n",
		res.Output.H, res.Output.W, res.Output.C, res.Output.Scale)
	if len(res.Logits) > 0 {
		fmt.Printf("  logits:  %v\n", res.Logits)
		fmt.Printf("  class:   %d\n", res.Argmax())
	}
	fmt.Printf("  arrays used:     %d\n", res.ArraysUsed)
	fmt.Printf("  compute cycles:  %d (stepped bit-serial microcode)\n", res.ComputeCycles)
	fmt.Printf("  access cycles:   %d (host/TMU reads and writes)\n", res.AccessCycles)
	if res.FabricBusCycles > 0 {
		fmt.Printf("  fabric cycles:   %d (cross-array partial-sum reduce)\n", res.FabricBusCycles)
	}
	if res.SkipZeroSlices {
		fmt.Printf("  zero-slice skipping: %d of %d multiplier slices skipped (density %.3f), %d cycles saved\n",
			res.SkippedSlices, res.TotalSlices, res.SliceDensity(), res.SkipCyclesSaved)
		t := report.NewTable("Per-layer slice skipping", "Layer", "Skipped", "Total", "Cycles saved")
		for _, l := range res.LayerSkips {
			t.Add(l.Layer, fmt.Sprint(l.SkippedSlices), fmt.Sprint(l.TotalSlices), fmt.Sprint(l.SkipCyclesSaved))
		}
		fmt.Println(t.String())
	}
}
