package neuralcache

import (
	"fmt"

	"neuralcache/internal/core"
	"neuralcache/internal/sram"
)

// InferenceResult is the outcome of a bit-accurate in-cache run.
type InferenceResult struct {
	Output *Tensor
	// Logits holds the classifier layer's raw accumulators when the model
	// ends in a logits layer; argmax over it is the predicted class.
	Logits []int32
	// ComputeCycles / AccessCycles are the emergent stepped-microcode
	// counters summed over all simulated arrays.
	ComputeCycles uint64
	AccessCycles  uint64
	ArraysUsed    int
	// FabricBusCycles is the intra-slice bus time charged for cross-array
	// partial-sum reduction; nonzero only when a convolution's lanes
	// spill across an array pair (for example Model WideCNN).
	FabricBusCycles uint64
	// SkipZeroSlices reports whether the run used the zero-skipping
	// multiply ops (Config.SkipZeroSlices). When false the skip counters
	// below are zero.
	SkipZeroSlices bool
	// SkippedSlices / TotalSlices count multiplier bit-slices elided and
	// issued across every multiply of the run; one slice is one multiplier
	// bit position on one array, skippable only when all 256 lanes hold a
	// zero there. SkipCyclesSaved is the exact compute-cycle reduction
	// versus the dense engine on the same input.
	SkippedSlices   uint64
	TotalSlices     uint64
	SkipCyclesSaved uint64
	// LayerSkips breaks the elisions down per layer, in execution order.
	LayerSkips []LayerSkip
}

// LayerSkip is one layer's share of the zero-slice elisions.
type LayerSkip struct {
	Layer           string
	SkippedSlices   uint64
	TotalSlices     uint64
	SkipCyclesSaved uint64
}

// SliceDensity returns the fraction of multiplier bit-slices that could
// not be skipped (1 = fully dense, also returned when no slices were
// counted). It is the measured bit-column density EstimateDensity prices.
func (r *InferenceResult) SliceDensity() float64 {
	if r.TotalSlices == 0 {
		return 1
	}
	return 1 - float64(r.SkippedSlices)/float64(r.TotalSlices)
}

// Run executes the model bit-accurately on simulated compute arrays. The
// model must have weights (InitWeights) and the input must match its
// shape. A layer's independent work groups run in parallel on
// Config.Workers goroutines; convolutions whose effective channels exceed
// 256 lanes spill across an array pair with the partial-sum reduction
// routed over the modeled interconnect, so every bundled verification
// model runs bit-accurately (Inception v3 remains Estimate-scale).
//
// Run is safe for concurrent use: each call simulates its own cache, and
// the System itself is immutable.
func (s *System) Run(m *Model, in *Tensor) (*InferenceResult, error) {
	if err := checkInputShape(m, in); err != nil {
		return nil, err
	}
	res, err := s.core.RunFunctional(m.net, in.internal())
	if err != nil {
		return nil, err
	}
	return newInferenceResult(res), nil
}

// checkInputShape rejects inputs that do not match the model.
func checkInputShape(m *Model, in *Tensor) error {
	h, w, c := m.InputShape()
	if in.H != h || in.W != w || in.C != c {
		return fmt.Errorf("neuralcache: input %dx%dx%d, model %s expects %dx%dx%d",
			in.H, in.W, in.C, m.Name(), h, w, c)
	}
	return nil
}

// newInferenceResult marshals a functional-engine result into the facade
// type, copying the output tensor and logits.
func newInferenceResult(res *core.FunctionalResult) *InferenceResult {
	out := &InferenceResult{
		Output:          fromInternal(res.Output),
		ComputeCycles:   res.Stats.ComputeCycles,
		AccessCycles:    res.Stats.AccessCycles,
		ArraysUsed:      res.ArraysUsed,
		FabricBusCycles: res.FabricCycles,
	}
	if res.Trace.Logits != nil {
		out.Logits = append([]int32(nil), res.Trace.Logits...)
	}
	if res.Skip.Enabled {
		out.SkipZeroSlices = true
		out.SkippedSlices = res.Skip.SkippedSlices
		out.TotalSlices = res.Skip.TotalSlices
		out.SkipCyclesSaved = res.Skip.CyclesSaved
		for _, l := range res.Skip.Layers {
			out.LayerSkips = append(out.LayerSkips, LayerSkip{
				Layer:           l.Layer,
				SkippedSlices:   l.SkippedSlices,
				TotalSlices:     l.TotalSlices,
				SkipCyclesSaved: l.CyclesSaved,
			})
		}
	}
	return out
}

// FaultKind selects an injected hardware defect for fault campaigns.
type FaultKind int

// Supported defects (see internal/sram: stuck cells re-assert after every
// write-back; a dead lane's peripheral never writes back).
const (
	FaultStuckAt0 FaultKind = iota
	FaultStuckAt1
	FaultDeadLane
)

// Fault is one injected defect, addressed by the functional engine's
// compute-array ordinal.
type Fault struct {
	Array int // round-robin compute-array ordinal
	Row   int // word line (ignored for FaultDeadLane)
	Lane  int // bit line
	Kind  FaultKind
}

// RunWithFaults executes the model bit-accurately with hardware defects
// injected before any data lands, for blast-radius studies: compare
// against Run on the same input to see which outputs a defect corrupts.
func (s *System) RunWithFaults(m *Model, in *Tensor, faults []Fault) (*InferenceResult, error) {
	if err := checkInputShape(m, in); err != nil {
		return nil, err
	}
	inject := func(ordinal int, a *sram.Array) {
		for _, f := range faults {
			if f.Array != ordinal {
				continue
			}
			switch f.Kind {
			case FaultStuckAt0:
				a.InjectStuckAt(f.Row, f.Lane, 0)
			case FaultStuckAt1:
				a.InjectStuckAt(f.Row, f.Lane, 1)
			case FaultDeadLane:
				a.InjectDeadLane(f.Lane)
			}
		}
	}
	res, err := s.core.RunFunctionalFaulty(m.net, in.internal(), core.FaultInjector(inject))
	if err != nil {
		return nil, err
	}
	return newInferenceResult(res), nil
}

// RunReference executes the model on the host integer reference executor
// — the oracle the in-cache engine is verified against. It returns the
// same result type with zero cycle counters; System.Run must produce
// byte-identical Output and Logits.
func (m *Model) RunReference(in *Tensor) (*InferenceResult, error) {
	out, tr, err := runReference(m.net, in.internal())
	if err != nil {
		return nil, err
	}
	res := &InferenceResult{Output: fromInternal(out)}
	if tr.Logits != nil {
		res.Logits = append([]int32(nil), tr.Logits...)
	}
	return res, nil
}

// Argmax returns the index of the largest logit, or -1 when there are
// none.
func (r *InferenceResult) Argmax() int {
	best := -1
	for i, v := range r.Logits {
		if best < 0 || v > r.Logits[best] {
			best = i
		}
	}
	return best
}
