package neuralcache

import (
	"fmt"

	"neuralcache/internal/isa"
	"neuralcache/internal/sram"
)

// Compute-Cache-style vector API: element-wise bit-serial arithmetic on
// the cache's lanes. Operands are spread 256 elements per simulated 8 KB
// array; every array executes the same broadcast instruction in lockstep
// (§IV-F), so the charged wall-clock cost of an operation is independent
// of the element count until the cache's lanes are exhausted.

// VectorStats describes one vector operation's execution.
type VectorStats struct {
	Lanes         int     // elements processed in parallel
	Arrays        int     // simulated arrays used
	ChargedCycles uint64  // paper-closed-form cycles (lockstep wall clock)
	Seconds       float64 // ChargedCycles at the compute clock
	ComputeCycles uint64  // emergent stepped-microcode cycles per array
}

func (s *System) vectorOp(op isa.Op, a, b []uint64, bits, outBits int) ([]uint64, *VectorStats, error) {
	if len(a) != len(b) {
		return nil, nil, fmt.Errorf("neuralcache: operand lengths %d and %d differ", len(a), len(b))
	}
	if bits <= 0 || bits > 16 {
		return nil, nil, fmt.Errorf("neuralcache: operand width %d outside 1..16", bits)
	}
	if len(a) > s.Lanes() {
		return nil, nil, fmt.Errorf("neuralcache: %d elements exceed the cache's %d lanes", len(a), s.Lanes())
	}
	mask := uint64(1)<<uint(bits) - 1
	out := make([]uint64, len(a))
	// Row map: a at 0, b at bits, result at 2·bits (up to 2·bits rows),
	// scratch above the result.
	inst := isa.Instruction{
		Op: op, A: 0, B: bits, Dst: 2 * bits,
		Scratch: 2*bits + outBits, Width: bits,
	}

	var stats VectorStats
	for base := 0; base < len(a); base += sram.BitLines {
		n := len(a) - base
		if n > sram.BitLines {
			n = sram.BitLines
		}
		var arr sram.Array
		av := make([]uint64, n)
		bv := make([]uint64, n)
		for i := 0; i < n; i++ {
			av[i] = a[base+i] & mask
			bv[i] = b[base+i] & mask
		}
		arr.WriteElements(0, bits, av)
		arr.WriteElements(bits, bits, bv)
		before := arr.Stats().ComputeCycles
		isa.Execute(&arr, inst)
		stats.ComputeCycles = arr.Stats().ComputeCycles - before
		for i, v := range arr.ReadElements(inst.Dst, outBits, n) {
			out[base+i] = v
		}
		stats.Arrays++
	}
	stats.Lanes = len(a)
	stats.ChargedCycles = uint64(isa.ChargedCycles(inst))
	stats.Seconds = float64(stats.ChargedCycles) / (s.core.Config().Cost.FreqGHz * 1e9)
	return out, &stats, nil
}

// VectorAdd returns a+b element-wise at the given operand width
// (results are bits+1 wide; cost n+1 cycles regardless of length).
func (s *System) VectorAdd(a, b []uint64, bits int) ([]uint64, *VectorStats, error) {
	return s.vectorOp(isa.OpAdd, a, b, bits, bits+1)
}

// VectorMul returns a·b element-wise (results 2·bits wide; cost n²+5n−2
// charged cycles).
func (s *System) VectorMul(a, b []uint64, bits int) ([]uint64, *VectorStats, error) {
	return s.vectorOp(isa.OpMultiply, a, b, bits, 2*bits)
}

// VectorSub returns a−b element-wise modulo 2^bits.
func (s *System) VectorSub(a, b []uint64, bits int) ([]uint64, *VectorStats, error) {
	return s.vectorOp(isa.OpSub, a, b, bits, bits)
}

// VectorMax returns max(a, b) element-wise.
func (s *System) VectorMax(a, b []uint64, bits int) ([]uint64, *VectorStats, error) {
	return s.vectorOp(isa.OpMax, a, b, bits, bits)
}
